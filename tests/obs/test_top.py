"""Dashboard tests: the pure render layer (sparkline, frame text),
snapshots built from an events log and from a live telemetry server,
and the run_top loop's exit behavior — driven with injected streams
and a server on an ephemeral port."""

import io
import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.server import TelemetryServer
from repro.obs.top import (
    TopError,
    TopSnapshot,
    render_top,
    run_top,
    snapshot_from_events,
    snapshot_from_http,
    sparkline,
)

META = {
    "t": "meta", "schema": 1, "kind": "hunt",
    "workload": "workqueue-buggy", "model": "WO", "tries": 4,
    "jobs": 1, "policies": "default",
    "hunt_id": "feedface01020304", "detector": "shb",
}


def _try(index, status, policy="ring", duration=0.02, **extra):
    record = {
        "t": "try", "index": index, "seed": index, "policy": policy,
        "status": status, "duration_sec": duration, "cache_hit": False,
        "fingerprint": f"fp{index}", "races": int(status == "racy"),
        "operations": 40, "completed": True, "error": "",
        "attempt": 0, "retries": 0, "detector": "shb",
        "certified": int(status == "racy"),
    }
    record.update(extra)
    return record


def _write_log(path, records):
    path.write_text(
        "".join(json.dumps(r, sort_keys=True) + "\n" for r in records),
        encoding="utf-8",
    )


@pytest.fixture
def events_log(tmp_path):
    path = tmp_path / "hunt.jsonl"
    _write_log(path, [
        META,
        _try(0, "racy", policy="ring", partitions=["p1", "p2"]),
        _try(1, "clean", policy="stubborn", duration=0.3),
        _try(2, "racy", policy="ring", cache_hit=True, fingerprint="fp0"),
        _try(3, "error", policy="stubborn", failure_kind="deterministic"),
        {"t": "summary", "tries": 4, "elapsed_sec": 2.0,
         "hunt_id": "feedface01020304"},
    ])
    return path


# ----------------------------------------------------------------------
# sparkline
# ----------------------------------------------------------------------

def test_sparkline_scales_linearly():
    assert sparkline([]) == ""
    assert sparkline([0, 0]) == "▁▁"
    line = sparkline([0, 1, 4, 8])
    assert len(line) == 4
    assert line[0] == "▁"
    assert line[-1] == "█"
    # monotone counts render monotone glyphs
    assert sorted(line) == list(line)


# ----------------------------------------------------------------------
# events-log snapshots
# ----------------------------------------------------------------------

def test_snapshot_from_events(events_log):
    snap = snapshot_from_events(str(events_log))
    assert snap.hunt_id == "feedface01020304"
    assert snap.info["workload"] == "workqueue-buggy"
    assert snap.settled == 4
    assert snap.total == 4
    assert snap.racy == 2
    assert snap.finished  # the summary record landed
    assert snap.elapsed_sec == 2.0
    assert snap.per_policy["ring"]["racy"] == 2
    assert snap.per_detector["shb"]["certified"] == 2
    assert snap.failures_by_kind == {"deterministic": 1}
    assert snap.cache_hits == 1
    # fp0 appears twice (a cache hit repeats it), fp1, fp3 → 3 distinct
    assert snap.coverage_fingerprints == 3
    assert snap.coverage_partitions == 2
    assert snap.duration_quantiles["count"] == 4
    assert sum(count for _, count in snap.duration_buckets) == 4


def test_snapshot_from_events_missing_file(tmp_path):
    with pytest.raises(TopError):
        snapshot_from_events(str(tmp_path / "nope.jsonl"))


def test_snapshot_from_unfinished_log(tmp_path):
    path = tmp_path / "open.jsonl"
    _write_log(path, [META, _try(0, "racy")])
    snap = snapshot_from_events(str(path))
    assert not snap.finished
    assert snap.settled == 1
    assert snap.total == 4  # meta's planned tries, not tries so far


# ----------------------------------------------------------------------
# http snapshots (against a real server)
# ----------------------------------------------------------------------

def test_snapshot_from_http():
    registry = MetricsRegistry()
    registry.counter(
        "hunt_tries_total", labels=("policy", "status", "detector"),
    ).inc(5, policy="ring", status="racy", detector="wcp")
    registry.gauge("hunt_done").set(5)
    registry.gauge("hunt_total").set(10)
    registry.gauge("hunt_racy").set(5)
    registry.gauge("hunt_coverage_fingerprints").set(4)
    registry.gauge("hunt_coverage_provenance_partitions").set(2)
    registry.histogram(
        "hunt_job_duration_seconds", buckets=(0.01, 0.1),
    ).observe(0.05)
    server = TelemetryServer(registry, info={
        "hunt_id": "0011223344556677", "workload": "iriw", "model": "TSO",
    })
    url = server.start()
    try:
        snap = snapshot_from_http(url)
    finally:
        server.stop()
    assert snap.hunt_id == "0011223344556677"
    assert snap.settled == 5
    assert snap.total == 10
    assert snap.racy == 5
    assert snap.per_policy == {"ring": {"tries": 5}}
    assert snap.per_detector == {"wcp": {"tries": 5}}
    assert snap.coverage_fingerprints == 4
    assert snap.coverage_partitions == 2
    # non-cumulative bucket counts recovered from the cumulative wire
    counts = dict(snap.duration_buckets)
    assert counts == {"0.01": 0.0, "0.1": 1.0, "+Inf": 0.0}


def test_snapshot_from_http_connection_refused():
    with pytest.raises(TopError):
        snapshot_from_http("http://127.0.0.1:1", timeout=0.5)


# ----------------------------------------------------------------------
# render (pure)
# ----------------------------------------------------------------------

def test_render_top_frame(events_log):
    frame = render_top(snapshot_from_events(str(events_log)))
    assert "workqueue-buggy WO shb" in frame
    assert "[hunt feedface01020304]" in frame
    assert "4/4 (100%)" in frame
    assert "racy 2 (50%)" in frame
    assert "3 fingerprint(s), 2 provenance partition(s)" in frame
    assert "ring" in frame and "2/2 racy" in frame
    assert "shb" in frame and "2 certified" in frame
    assert "failures: 1 deterministic" in frame
    assert "job duration" in frame
    assert "(finished)" in frame


def test_render_top_empty_snapshot():
    frame = render_top(TopSnapshot(source="x"))
    assert "weakraces top — hunt" in frame
    assert "0/0" in frame
    assert "rate -" in frame


# ----------------------------------------------------------------------
# run loop
# ----------------------------------------------------------------------

def test_run_top_once_from_events(events_log, capsys):
    out = io.StringIO()
    assert run_top(events_path=str(events_log), once=True, stream=out) == 0
    assert "weakraces top" in out.getvalue()
    # one frame, no ANSI cursor control in --once mode
    assert "\x1b[" not in out.getvalue()


def test_run_top_requires_exactly_one_source(capsys):
    assert run_top() == 2
    assert run_top(attach="x", events_path="y") == 2
    assert "exactly one" in capsys.readouterr().err


def test_run_top_bad_source_exits_2(tmp_path, capsys):
    assert run_top(events_path=str(tmp_path / "nope.jsonl"), once=True) == 2
    assert "top:" in capsys.readouterr().err


def test_run_top_loops_until_finished(events_log):
    out = io.StringIO()
    sleeps = []
    status = run_top(
        events_path=str(events_log), interval=0.5,
        stream=out, sleep=sleeps.append,
    )
    # the log carries a summary record → first frame already "finished"
    assert status == 0
    assert sleeps == []
    assert "hunt finished" in out.getvalue()
    assert "\x1b[H" in out.getvalue()  # the repaint loop homes the cursor
