"""HuntStatusLine tests: pure rendering, registry-derived rates,
throttling, and terminal painting — all driven with an injected clock
and an in-memory stream."""

import io

from repro.obs import metrics
from repro.obs.live import HuntStatusLine, _format_eta


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def _line(registry=None, clock=None, **kwargs):
    return HuntStatusLine(
        registry=registry,
        stream=io.StringIO(),
        clock=clock if clock is not None else FakeClock(),
        **kwargs,
    )


# ----------------------------------------------------------------------
# render (pure)
# ----------------------------------------------------------------------

def test_render_fallback_rate_without_registry():
    clock = FakeClock()
    line = _line(clock=clock)
    clock.advance(2.0)
    line.progress(10, 40, 3)
    text = line.render(elapsed=2.0)
    assert "hunt 10/40" in text
    assert "(25%)" in text
    assert "5.0 jobs/s" in text  # 10 done / 2s, no registry
    assert "racy 30%" in text
    assert "cache" not in text
    assert "eta 6.0s" in text  # 30 remaining / 5 per sec


def test_render_prefers_registry_throughput_and_cache():
    reg = metrics.MetricsRegistry()
    reg.timeseries("hunt_throughput").record(1.0, 80.0)
    reg.timeseries("hunt_throughput").record(2.0, 100.0)
    reg.counter("hunt_trace_cache_hits_total").inc(5)
    clock = FakeClock()
    line = _line(registry=reg, clock=clock)
    line._done, line._total, line._racy = 10, 40, 0
    text = line.render(elapsed=2.0)
    assert "100.0 jobs/s" in text  # the latest sample, not done/elapsed
    assert "cache 50%" in text
    assert "eta" in text


def test_render_falls_back_to_active_registry():
    with metrics.collect() as reg:
        reg.timeseries("hunt_throughput").record(0.5, 42.0)
        line = _line()
        line._done, line._total = 5, 10
        assert "42.0 jobs/s" in line.render(elapsed=1.0)
    # outside collection the ambient registry is gone
    line = _line()
    line._done, line._total = 5, 10
    assert "5.0 jobs/s" in line.render(elapsed=1.0)


def test_render_degenerate_states():
    line = _line()
    assert line.render(elapsed=0.0) == "hunt 0/0  0.0 jobs/s"
    line._done, line._total, line._racy = 8, 8, 8
    text = line.render(elapsed=2.0)
    assert "eta" not in text  # nothing remaining
    assert "racy 100%" in text


def test_format_eta_scales():
    assert _format_eta(12.3) == "12.3s"
    assert _format_eta(75) == "1m15s"
    assert _format_eta(3_725) == "1h02m"


# ----------------------------------------------------------------------
# throttling and painting
# ----------------------------------------------------------------------

def test_progress_throttles_repaints():
    clock = FakeClock(100.0)  # a monotonic clock never starts at 0
    line = _line(clock=clock, min_interval=0.1)
    line.progress(1, 10, 0)  # first paint always lands
    first = line.stream.getvalue()
    assert "hunt 1/10" in first
    clock.advance(0.01)
    line.progress(2, 10, 0)  # inside the interval: suppressed
    assert line.stream.getvalue() == first
    clock.advance(0.2)
    line.progress(3, 10, 0)  # interval elapsed: repainted
    assert "hunt 3/10" in line.stream.getvalue()


def test_progress_final_tick_always_paints():
    clock = FakeClock()
    line = _line(clock=clock, min_interval=10.0)
    line.progress(1, 2, 0)
    clock.advance(0.001)
    line.progress(2, 2, 1)  # done == total beats the throttle
    assert "hunt 2/2" in line.stream.getvalue()


def test_paint_erases_longer_previous_line():
    line = _line()
    line._paint("a" * 30)
    line._paint("b" * 10)
    painted = line.stream.getvalue().split("\r")[-1]
    assert painted == "b" * 10 + " " * 20


def test_finish_moves_to_fresh_line():
    clock = FakeClock()
    line = _line(clock=clock)
    line.progress(2, 2, 0)
    line.finish()
    out = line.stream.getvalue()
    assert out.endswith("\n")
    assert "hunt 2/2" in out


# ----------------------------------------------------------------------
# the final render: true counts on early stop, no stale ETA/rate
# ----------------------------------------------------------------------

def test_finish_paints_true_counts_past_the_throttle():
    # an early stop lands mid-throttle-window: the last progress ticks
    # were swallowed, and the terminal still shows the old snapshot
    clock = FakeClock(100.0)
    line = _line(clock=clock, min_interval=10.0)
    line.progress(5, 100, 1)  # first paint lands
    clock.advance(0.01)
    line.progress(37, 100, 12)  # throttled away (early stop: done<total)
    assert "hunt 37/100" not in line.stream.getvalue()
    line.finish()
    out = line.stream.getvalue()
    assert "hunt 37/100" in out.split("\r")[-1]
    assert out.endswith("\n")


def test_finish_drops_eta_and_stale_throughput():
    reg = metrics.MetricsRegistry()
    # a stale mid-run sample much higher than the whole-run average
    reg.timeseries("hunt_throughput").record(1.0, 500.0)
    clock = FakeClock()
    line = _line(registry=reg, clock=clock)
    clock.advance(10.0)
    line._done, line._total, line._racy = 20, 100, 4
    live = line.render()
    assert "500.0 jobs/s" in live and "eta" in live
    final = line.render(final=True)
    # the final line reports the whole-run average and never an ETA —
    # a stopped hunt has no future to estimate
    assert "2.0 jobs/s" in final
    assert "500.0" not in final
    assert "eta" not in final


def test_finish_note_marks_interruption():
    clock = FakeClock()
    line = _line(clock=clock)
    line.progress(3, 10, 1)
    line.finish(note="interrupted")
    assert line.stream.getvalue().rstrip("\n").endswith("interrupted")
