"""Metrics registry tests: instrument behavior, label discipline,
get-or-create semantics, cross-process merge, and the module-level
activation slot."""

import pickle

import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    TimeSeries,
)


# ----------------------------------------------------------------------
# counters
# ----------------------------------------------------------------------

def test_counter_accumulates_per_label_set():
    c = Counter("tries", labels=("policy", "status"))
    c.inc(policy="ring", status="racy")
    c.inc(2, policy="ring", status="racy")
    c.inc(policy="ring", status="clean")
    assert c.value(policy="ring", status="racy") == 3
    assert c.value(policy="ring", status="clean") == 1
    assert c.value(policy="lazy", status="racy") == 0
    assert c.total() == 4


def test_counter_rejects_decrease():
    c = Counter("tries")
    with pytest.raises(MetricError):
        c.inc(-1)


def test_counter_rejects_wrong_labels():
    c = Counter("tries", labels=("policy",))
    with pytest.raises(MetricError):
        c.inc()  # missing label
    with pytest.raises(MetricError):
        c.inc(policy="ring", status="racy")  # extra label
    with pytest.raises(MetricError):
        c.value(status="racy")  # wrong label name


def test_counter_series_is_sorted_and_labelled():
    c = Counter("tries", labels=("policy",))
    c.inc(policy="zeta")
    c.inc(3, policy="alpha")
    assert c.series() == [
        {"labels": {"policy": "alpha"}, "value": 3},
        {"labels": {"policy": "zeta"}, "value": 1},
    ]


# ----------------------------------------------------------------------
# gauges
# ----------------------------------------------------------------------

def test_gauge_set_add_value():
    g = Gauge("done")
    assert g.value() is None
    g.set(5)
    g.add(2)
    g.add(-3)
    assert g.value() == 4


# ----------------------------------------------------------------------
# histograms
# ----------------------------------------------------------------------

def test_histogram_buckets_count_sum_mean():
    h = Histogram("dur", buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.05, 0.5, 7.0):
        h.observe(value)
    assert h.count() == 5
    assert h.sum() == pytest.approx(7.605)
    assert h.mean() == pytest.approx(7.605 / 5)
    assert h.series()[0]["buckets"] == [1, 2, 1, 1]  # last = +inf


def test_histogram_quantile_interpolates_within_bucket():
    h = Histogram("dur", buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.05, 0.5):
        h.observe(value)
    # target rank 2 of 4 lands halfway into the (0.01, 0.1] bucket
    # (1 observation below it, 2 inside): 0.01 + 0.5 * (0.1 - 0.01)
    assert h.quantile(0.5) == pytest.approx(0.055)
    assert h.quantile(1.0) == pytest.approx(1.0)
    # estimate error is bounded by the bucket width: p50 differs from
    # the true quantile (0.05) by < 0.09
    assert abs(h.quantile(0.5) - 0.05) < 0.1 - 0.01
    # the +inf bucket answers with the largest finite bound
    h.observe(9.0)
    assert h.quantile(1.0) == 1.0
    # the lowest bucket interpolates up from zero
    low = Histogram("low", buckets=(0.01, 0.1))
    low.observe(0.004)
    low.observe(0.006)
    assert low.quantile(0.5) == pytest.approx(0.005)


def test_histogram_quantile_rejects_out_of_range():
    h = Histogram("dur", buckets=(0.01,))
    h.observe(0.005)
    with pytest.raises(MetricError):
        h.quantile(1.5)
    with pytest.raises(MetricError):
        h.quantile(-0.1)


def test_histogram_empty_quantile_and_mean():
    h = Histogram("dur")
    assert h.quantile(0.5) is None
    assert h.mean() is None
    assert h.count() == 0


def test_histogram_requires_buckets():
    with pytest.raises(MetricError):
        Histogram("dur", buckets=())


# ----------------------------------------------------------------------
# time series
# ----------------------------------------------------------------------

def test_timeseries_ring_buffer_drops_oldest():
    ts = TimeSeries("rate", capacity=3)
    for i in range(5):
        ts.record(float(i), float(i * 10))
    assert ts.points() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
    assert ts.latest() == (4.0, 40.0)


def test_timeseries_rejects_zero_capacity():
    with pytest.raises(MetricError):
        TimeSeries("rate", capacity=0)


# ----------------------------------------------------------------------
# registry: get-or-create and conflicts
# ----------------------------------------------------------------------

def test_registry_get_or_create_returns_same_instrument():
    reg = MetricsRegistry()
    a = reg.counter("tries", labels=("policy",))
    b = reg.counter("tries", labels=("policy",))
    assert a is b
    assert reg.get("tries") is a
    assert reg.get("missing") is None
    assert reg.names() == ["tries"]


def test_registry_rejects_type_conflict():
    reg = MetricsRegistry()
    reg.counter("tries")
    with pytest.raises(MetricError):
        reg.gauge("tries")


def test_registry_rejects_label_conflict():
    reg = MetricsRegistry()
    reg.counter("tries", labels=("policy",))
    with pytest.raises(MetricError):
        reg.counter("tries", labels=("policy", "status"))


# ----------------------------------------------------------------------
# merge: the cross-worker contract
# ----------------------------------------------------------------------

def _worker_registry(factor):
    reg = MetricsRegistry()
    reg.counter("tries", labels=("status",)).inc(2 * factor, status="racy")
    reg.gauge("done").set(10 * factor)
    h = reg.histogram("dur", buckets=(0.1, 1.0))
    h.observe(0.05 * factor)
    reg.timeseries("rate", capacity=4).record(float(factor), 100.0 * factor)
    return reg


def test_merge_records_sums_counters_and_histograms():
    parent = _worker_registry(1)
    parent.merge_records(_worker_registry(2).to_records())
    assert parent.get("tries").value(status="racy") == 6
    h = parent.get("dur")
    assert h.count() == 2
    assert h.sum() == pytest.approx(0.15)


def test_merge_gauge_is_last_applied_wins():
    parent = _worker_registry(1)
    parent.merge(_worker_registry(3))
    assert parent.get("done").value() == 30
    # merging the other direction gives the other answer: documented
    # non-commutativity, which is why the hunt only sets gauges
    # parent-side
    other = _worker_registry(3)
    other.merge(_worker_registry(1))
    assert other.get("done").value() == 10


def test_merge_timeseries_interleaves_and_respects_capacity():
    parent = MetricsRegistry()
    ts = parent.timeseries("rate", capacity=3)
    ts.record(1.0, 10.0)
    ts.record(3.0, 30.0)
    other = MetricsRegistry()
    other.timeseries("rate", capacity=3).record(2.0, 20.0)
    other.timeseries("rate", capacity=3).record(4.0, 40.0)
    parent.merge(other)
    # sorted by timestamp, newest 3 kept
    assert parent.get("rate").points() == [
        (2.0, 20.0), (3.0, 30.0), (4.0, 40.0),
    ]


def test_merge_records_interleaves_labeled_coverage_series():
    # the hunt_coverage family is a labeled timeseries; cross-worker
    # record merges must interleave per label cell, by timestamp
    parent = MetricsRegistry()
    ts = parent.timeseries("hunt_coverage", labels=("kind",), capacity=8)
    ts.record(1.0, 1.0, kind="fingerprints")
    ts.record(3.0, 2.0, kind="fingerprints")
    ts.record(2.0, 1.0, kind="partitions")
    worker = MetricsRegistry()
    other = worker.timeseries("hunt_coverage", labels=("kind",), capacity=8)
    other.record(2.0, 10.0, kind="fingerprints")
    other.record(4.0, 11.0, kind="fingerprints")
    other.record(1.0, 20.0, kind="partitions")
    parent.merge_records(worker.to_records())
    merged = parent.get("hunt_coverage")
    assert merged.points(kind="fingerprints") == [
        (1.0, 1.0), (2.0, 10.0), (3.0, 2.0), (4.0, 11.0),
    ]
    assert merged.points(kind="partitions") == [(1.0, 20.0), (2.0, 1.0)]


def test_merge_records_coverage_ring_cap_keeps_newest():
    parent = MetricsRegistry()
    ts = parent.timeseries("hunt_coverage", labels=("kind",), capacity=3)
    for i in range(3):
        ts.record(float(i), float(i), kind="fingerprints")
    worker = MetricsRegistry()
    other = worker.timeseries("hunt_coverage", labels=("kind",), capacity=3)
    for i in range(3, 6):
        other.record(float(i), float(i), kind="fingerprints")
    parent.merge_records(worker.to_records())
    merged = parent.get("hunt_coverage")
    # capacity survives the merge: oldest samples fall off, per cell
    assert merged.points(kind="fingerprints") == [
        (3.0, 3.0), (4.0, 4.0), (5.0, 5.0),
    ]
    assert merged.latest(kind="fingerprints") == (5.0, 5.0)


def test_merge_creates_missing_instruments():
    parent = MetricsRegistry()
    parent.merge_records(_worker_registry(2).to_records())
    assert set(parent.names()) == {"tries", "done", "dur", "rate"}
    assert parent.get("dur").bounds == (0.1, 1.0)
    assert parent.get("rate").capacity == 4


def test_merge_rejects_bucket_mismatch():
    parent = MetricsRegistry()
    parent.histogram("dur", buckets=(0.1, 1.0)).observe(0.5)
    records = parent.to_records()
    records[0]["series"][0]["buckets"] = [1]  # wrong arity
    bad = MetricsRegistry()
    bad.histogram("dur", buckets=(0.1, 1.0))
    with pytest.raises(MetricError):
        bad.merge_records(records)


def test_merge_rejects_unknown_kind():
    reg = MetricsRegistry()
    with pytest.raises(MetricError):
        reg.merge_records(
            [{"t": "metric", "kind": "sparkline", "name": "x",
              "labels": [], "series": []}]
        )


def test_merge_ignores_foreign_records():
    reg = MetricsRegistry()
    reg.merge_records([{"t": "span", "name": "not-a-metric"}])
    assert reg.names() == []


def test_records_are_picklable_and_jsonable():
    import json

    records = _worker_registry(1).to_records()
    assert pickle.loads(pickle.dumps(records)) == records
    assert json.loads(json.dumps(records)) == records


def test_snapshot_keyed_by_name():
    snap = _worker_registry(1).snapshot()
    assert snap["tries"]["kind"] == "counter"
    assert snap["rate"]["kind"] == "timeseries"


# ----------------------------------------------------------------------
# module-level activation slot
# ----------------------------------------------------------------------

def test_collect_activates_and_restores():
    assert metrics.active() is None
    assert not metrics.enabled()
    with metrics.collect() as reg:
        assert metrics.active() is reg
        assert metrics.enabled()
        reg.counter("x").inc()
    assert metrics.active() is None
    assert reg.get("x").value() == 1


def test_collect_accepts_existing_registry_and_nests():
    outer = MetricsRegistry()
    inner = MetricsRegistry()
    with metrics.collect(outer):
        with metrics.collect(inner):
            assert metrics.active() is inner
        assert metrics.active() is outer
    assert metrics.active() is None
