"""Event-log tests: writer round-trip, schema validation (including
unknown-version rejection), the tail/summarize views, and the live
HuntEventLog fed by a real hunt."""

import json

import pytest

from repro.analysis.hunting import hunt_races
from repro.machine.models import make_model
from repro.obs.events import (
    EVENTS_FORMAT,
    EventLogWriter,
    HuntEventLog,
    check_events,
    format_try,
    read_events,
    summarize_events,
    summary_data,
    validate_events,
)
from repro.programs.workqueue import buggy_workqueue_program


def _wo():
    return make_model("WO")


def _try_record(**overrides):
    record = {
        "t": "try", "index": 0, "seed": 0, "policy": "stubborn",
        "status": "clean", "duration_sec": 0.004, "cache_hit": False,
        "fingerprint": "", "races": 0, "operations": 40,
        "completed": True, "error": "",
    }
    record.update(overrides)
    return record


def _write_lines(path, records):
    path.write_text(
        "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
    )


# ----------------------------------------------------------------------
# writer round-trip
# ----------------------------------------------------------------------

def test_writer_emits_meta_header_immediately(tmp_path):
    path = tmp_path / "log.jsonl"
    writer = EventLogWriter(path, kind="hunt", meta={"workload": "wq"})
    # even before close the header is flushed — an interrupted run
    # leaves an identifiable prefix
    first = json.loads(path.read_text().splitlines()[0])
    assert first == {
        "t": "meta", "schema": EVENTS_FORMAT, "kind": "hunt",
        "workload": "wq",
    }
    writer.close()
    assert validate_events(path) == []


def test_writer_context_manager_closes(tmp_path):
    path = tmp_path / "log.jsonl"
    with EventLogWriter(path, kind="hunt") as writer:
        writer.write(_try_record())
    assert writer._fh.closed
    loaded = read_events(path)
    assert len(loaded["tries"]) == 1
    assert loaded["meta"]["schema"] == EVENTS_FORMAT


def test_read_events_sorts_records_by_type(tmp_path):
    path = tmp_path / "log.jsonl"
    with EventLogWriter(path, kind="hunt") as writer:
        writer.write(_try_record(index=0))
        writer.write(_try_record(index=1, status="racy", races=2))
        writer.write({"t": "stage", "path": "hunt.job", "count": 2,
                      "total_sec": 0.01, "min_sec": 0.004,
                      "max_sec": 0.006, "counters": {}})
        writer.write({"t": "summary", "tries": 2, "elapsed_sec": 0.01})
    loaded = read_events(path)
    assert [t["index"] for t in loaded["tries"]] == [0, 1]
    assert loaded["stages"][0]["path"] == "hunt.job"
    assert loaded["summary"]["tries"] == 2


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------

def test_validate_accepts_current_schema(tmp_path):
    path = tmp_path / "log.jsonl"
    _write_lines(path, [
        {"t": "meta", "schema": EVENTS_FORMAT, "kind": "hunt"},
        _try_record(),
    ])
    assert validate_events(path) == []


@pytest.mark.parametrize("schema,fragment", [
    (EVENTS_FORMAT + 1, "unknown schema version"),
    (0, "unknown schema version"),
    ("1", "not an integer"),
    (True, "not an integer"),
    (1.0, "not an integer"),
    (None, "not an integer"),
])
def test_validate_rejects_bad_schema_versions(tmp_path, schema, fragment):
    path = tmp_path / "log.jsonl"
    _write_lines(path, [{"t": "meta", "schema": schema, "kind": "hunt"}])
    problems = validate_events(path)
    assert len(problems) == 1
    assert fragment in problems[0]


def test_validate_rejects_structural_problems(tmp_path):
    path = tmp_path / "log.jsonl"
    _write_lines(path, [
        {"t": "meta", "schema": EVENTS_FORMAT, "kind": "hunt"},
        {"t": "try", "index": 0},  # missing keys
        _try_record(status="exploded"),
        _try_record(duration_sec=-1.0),
        {"t": "meta", "schema": EVENTS_FORMAT},  # duplicate meta
        {"t": "banana"},
    ])
    problems = validate_events(path)
    assert any("try missing" in p for p in problems)
    assert any("unknown try status 'exploded'" in p for p in problems)
    assert any("negative try duration" in p for p in problems)
    assert any("duplicate meta" in p for p in problems)
    assert any("unknown record type 'banana'" in p for p in problems)


def test_validate_rejects_missing_meta_and_empty(tmp_path):
    path = tmp_path / "log.jsonl"
    _write_lines(path, [_try_record()])
    assert validate_events(path) == ["first record is not a meta record"]
    path.write_text("")
    assert validate_events(path) == ["empty event log"]
    assert validate_events(tmp_path / "missing.jsonl")[0].startswith(
        "unreadable"
    )


# ----------------------------------------------------------------------
# crash tolerance: the tail-write case versus mid-file garbage
# ----------------------------------------------------------------------

def test_truncated_final_line_is_a_warning_not_a_problem(tmp_path):
    """A process killed mid-append leaves a torn last line; every
    complete record before it is still good, so validation warns
    instead of failing."""
    path = tmp_path / "log.jsonl"
    _write_lines(path, [
        {"t": "meta", "schema": EVENTS_FORMAT, "kind": "hunt"},
        _try_record(index=0),
        _try_record(index=1),
    ])
    with path.open("rb+") as fh:
        fh.truncate(path.stat().st_size - 9)  # tear the tail
    problems, warnings = check_events(path)
    assert problems == []
    assert len(warnings) == 1
    assert "truncated final record" in warnings[0]
    # the historical interface stays problems-only
    assert validate_events(path) == []
    # and the reader still loads the intact prefix
    loaded = read_events(path)
    assert [t["index"] for t in loaded["tries"]] == [0]


def test_mid_file_garbage_is_still_a_problem(tmp_path):
    path = tmp_path / "log.jsonl"
    _write_lines(path, [
        {"t": "meta", "schema": EVENTS_FORMAT, "kind": "hunt"},
        _try_record(index=0),
    ])
    with path.open("a", encoding="utf-8") as fh:
        fh.write("{garbage\n")
        fh.write(json.dumps(_try_record(index=1)) + "\n")
    problems, warnings = check_events(path)
    assert warnings == []
    assert len(problems) == 1
    assert "invalid JSON" in problems[0]
    assert validate_events(path) == problems


def test_lone_torn_line_is_tolerated(tmp_path):
    # even the meta record can fall to a tail-write crash; the file
    # carries no usable data, but it's a warning, not corruption
    path = tmp_path / "log.jsonl"
    path.write_text("{not json\n")
    problems, warnings = check_events(path)
    assert problems == []
    assert len(warnings) == 1


def test_retried_status_validates_and_summarizes(tmp_path):
    path = tmp_path / "log.jsonl"
    _write_lines(path, [
        {"t": "meta", "schema": EVENTS_FORMAT, "kind": "hunt"},
        _try_record(index=3, status="retried", attempt=0,
                    error="InjectedCrash: boom"),
        _try_record(index=3, status="clean", attempt=1, retries=1),
        _try_record(index=4),
    ])
    assert validate_events(path) == []
    text = summarize_events(read_events(path))
    # superseded attempts are excluded from the racy-rate stats
    assert "2 tries" in text
    assert "1 retried attempt(s)" in text


def test_format_try_shows_retry_attempt():
    line = format_try(_try_record(status="retried", attempt=1,
                                  error="InjectedCrash: boom"))
    assert "retried" in line
    assert "attempt 2" in line


# ----------------------------------------------------------------------
# views
# ----------------------------------------------------------------------

def test_format_try_flags():
    line = format_try(_try_record(
        index=7, status="racy", races=3, cache_hit=True,
        fingerprint="abcdef0123456789", completed=False,
    ))
    assert "#7" in line
    assert "racy" in line
    assert "races=3" in line
    assert "fp=abcdef012345" in line  # truncated to 12 chars
    assert "cache" in line and "step-bound" in line


def test_format_try_error():
    line = format_try(_try_record(
        status="error", error="RuntimeError: boom",
    ))
    assert "RuntimeError: boom" in line


def test_summarize_events(tmp_path):
    path = tmp_path / "log.jsonl"
    _write_lines(path, [
        {"t": "meta", "schema": EVENTS_FORMAT, "kind": "hunt",
         "workload": "wq", "model": "WO", "jobs": 2},
        _try_record(index=0, status="racy", races=1),
        _try_record(index=1, status="clean", cache_hit=True),
        _try_record(index=2, policy="lazy", status="racy"),
        _try_record(index=3, status="skipped"),
        {"t": "stage", "path": "hunt.job", "count": 3,
         "total_sec": 0.012, "min_sec": 0.004, "max_sec": 0.004,
         "counters": {}},
        {"t": "summary", "tries": 3, "elapsed_sec": 0.05,
         "executions_per_sec": 60.0},
    ])
    assert validate_events(path) == []
    text = summarize_events(read_events(path))
    assert "workload=wq model=WO jobs=2" in text
    assert "3 tries (1 clean, 2 racy), 1 skipped by early stop" in text
    assert "trace cache: 1/3 hits (33%)" in text
    assert "stubborn: 1/2 racy" in text
    assert "lazy: 1/1 racy" in text
    assert "hunt.job: n=3" in text
    assert "60.0 exec/s" in text


def test_summarize_empty_log():
    text = summarize_events({"meta": {}, "tries": [], "stages": [],
                             "summary": None})
    assert "0 tries (none)" in text


def test_summarize_events_per_detector_breakdown(tmp_path):
    path = tmp_path / "log.jsonl"
    _write_lines(path, [
        {"t": "meta", "schema": EVENTS_FORMAT, "kind": "hunt",
         "workload": "wq", "detector": "postmortem"},
        _try_record(index=0, status="racy", races=1,
                    detector="shb", certified=2),
        _try_record(index=1, status="clean", detector="shb"),
        # no per-record detector: falls back to the meta record's
        _try_record(index=2, status="racy", races=1, certified=1),
    ])
    assert validate_events(path) == []
    text = summarize_events(read_events(path))
    assert "detectors:" in text
    assert "shb: 1/2 racy, 2 certified race(s)" in text
    assert "postmortem: 1/1 racy, 1 certified race(s)" in text


def test_summary_data_aggregates(tmp_path):
    path = tmp_path / "log.jsonl"
    _write_lines(path, [
        {"t": "meta", "schema": EVENTS_FORMAT, "kind": "hunt",
         "detector": "wcp"},
        _try_record(index=0, status="racy", races=1, certified=1,
                    cache_hit=True),
        _try_record(index=1, status="clean", policy="lazy"),
        _try_record(index=2, status="error",
                    failure_kind="deterministic"),
        _try_record(index=3, status="error"),  # no kind → unretried
        _try_record(index=4, status="retried"),
        _try_record(index=5, status="skipped"),
    ])
    data = summary_data(read_events(path))
    assert data["tries"] == 4
    assert data["skipped"] == 1
    assert data["retried"] == 1
    assert data["by_status"] == {"racy": 1, "clean": 1, "error": 2}
    assert data["per_policy"]["stubborn"]["tries"] == 3
    assert data["per_policy"]["lazy"] == {"tries": 1, "racy": 0}
    assert data["per_detector"]["wcp"] == {
        "tries": 4, "racy": 1, "certified": 1,
    }
    assert data["failures_by_kind"] == {"deterministic": 1, "unretried": 1}
    assert data["cache_hits"] == 1


def test_summary_data_no_detector_anywhere():
    data = summary_data({"meta": {"t": "meta"}, "tries": [
        _try_record(index=0, status="racy"),
    ], "stages": [], "summary": None})
    assert data["per_detector"] == {}


# ----------------------------------------------------------------------
# HuntEventLog fed by the real engine
# ----------------------------------------------------------------------

def test_hunt_event_log_end_to_end(tmp_path):
    path = tmp_path / "hunt.jsonl"
    log = HuntEventLog(path, meta={"workload": "workqueue-buggy",
                                   "model": "WO", "jobs": 1})
    result = hunt_races(
        buggy_workqueue_program(), _wo, tries=6, jobs=1,
        on_outcome=log.on_outcome,
    )
    log.write_stages(result.stage_profile)  # no-op: profiling off
    log.write_summary({"tries": result.tries,
                       "racy_runs": result.racy_runs,
                       "elapsed_sec": round(result.elapsed, 6)})
    log.close()
    assert validate_events(path) == []
    loaded = read_events(path)
    assert log.tries == result.tries == 6
    assert len(loaded["tries"]) == 6
    # every try record mirrors one job outcome
    statuses = [t["status"] for t in loaded["tries"]]
    assert statuses.count("racy") == result.racy_runs
    assert statuses.count("clean") == result.clean_runs
    assert sorted(t["index"] for t in loaded["tries"]) == list(range(6))
    cache_hits = sum(1 for t in loaded["tries"] if t["cache_hit"])
    assert cache_hits == result.trace_cache_hits
    assert all(t["duration_sec"] >= 0 for t in loaded["tries"])
    assert all(t["fingerprint"] for t in loaded["tries"])  # cache on
    assert loaded["summary"]["tries"] == 6
    assert loaded["stages"] == []


def test_hunt_event_log_enriched_try_fields(tmp_path):
    from repro.obs.metrics import MetricsRegistry

    path = tmp_path / "hunt.jsonl"
    log = HuntEventLog(path, meta={"detector": "shb"}, detector="shb")
    hunt_races(
        buggy_workqueue_program(), _wo, tries=4, jobs=1,
        on_outcome=log.on_outcome, detector="shb",
        metrics=MetricsRegistry(),  # collection on → partition keys flow
    )
    log.close()
    assert validate_events(path) == []
    tries = read_events(path)["tries"]
    assert all(t["detector"] == "shb" for t in tries)
    racy = [t for t in tries if t["status"] == "racy"]
    assert racy and all(t["certified"] >= 1 for t in racy)
    # the first analysis of each distinct trace carries its partition
    # coverage keys; cache hits repeat the fingerprint without them
    keyed = [t for t in racy if t.get("partitions")]
    assert keyed and all(
        not t["cache_hit"] for t in keyed
    )


def test_hunt_event_log_records_stage_aggregates(tmp_path):
    from repro import obs

    path = tmp_path / "hunt.jsonl"
    log = HuntEventLog(path)
    profiler = obs.Profiler()
    with profiler.activate():
        result = hunt_races(
            buggy_workqueue_program(), _wo, tries=2, jobs=1,
            on_outcome=log.on_outcome,
        )
    assert result.stage_profile
    log.write_stages(result.stage_profile)
    log.close()
    assert validate_events(path) == []
    stages = read_events(path)["stages"]
    assert any(s["path"] == "hunt.job" for s in stages)
    for stage in stages:
        assert stage["count"] >= 1
        assert "peak_rss_kb" not in stage  # dropped from the schema
