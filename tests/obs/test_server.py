"""Telemetry-server tests: address parsing, ephemeral-port startup,
real HTTP scrapes of /metrics (validated by the strict exposition
parser), /status (hunt_id and snapshot schema), /healthz, 404s, and
the scrape counter — all against a server bound to 127.0.0.1:0."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.exporters import parse_exposition
from repro.obs.metrics import MetricsRegistry
from repro.obs.server import TelemetryServer, hunt_status, parse_serve_address


@pytest.fixture
def served():
    registry = MetricsRegistry()
    registry.counter(
        "hunt_tries_total", "settled tries",
        labels=("policy", "status", "detector"),
    ).inc(2, policy="ring", status="racy", detector="postmortem")
    registry.gauge("hunt_done", "completed jobs").set(2)
    registry.gauge("hunt_total", "planned jobs").set(8)
    registry.gauge("hunt_racy", "racy runs").set(2)
    registry.gauge("hunt_coverage_fingerprints", "distinct traces").set(2)
    registry.gauge(
        "hunt_coverage_provenance_partitions", "distinct partitions").set(1)
    registry.histogram(
        "hunt_job_duration_seconds", "per-job wall time",
        buckets=(0.01, 0.1),
    ).observe(0.05)
    server = TelemetryServer(registry, info={
        "hunt_id": "cafe1234feed5678",
        "workload": "workqueue-buggy",
        "detector": "postmortem",
        "tries": 8,
    })
    url = server.start()
    try:
        yield server, registry, url
    finally:
        server.stop()


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, dict(response.headers), response.read()


# ----------------------------------------------------------------------
# address parsing
# ----------------------------------------------------------------------

def test_parse_serve_address():
    assert parse_serve_address("127.0.0.1:9099") == ("127.0.0.1", 9099)
    assert parse_serve_address("0.0.0.0:0") == ("0.0.0.0", 0)
    for bad in ("9099", ":9099", "host:", "host:abc", "host:70000"):
        with pytest.raises(ValueError):
            parse_serve_address(bad)


# ----------------------------------------------------------------------
# endpoints
# ----------------------------------------------------------------------

def test_ephemeral_port_resolved_on_start(served):
    server, _, url = served
    assert server.port != 0
    assert url == f"http://127.0.0.1:{server.port}"


def test_healthz(served):
    _, _, url = served
    status, _, body = _get(url + "/healthz")
    assert status == 200
    assert body == b"ok\n"


def test_metrics_endpoint_serves_valid_exposition(served):
    _, _, url = served
    status, headers, body = _get(url + "/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
    families = parse_exposition(body.decode("utf-8"))
    assert families["hunt_tries_total"].type == "counter"
    (sample,) = families["hunt_tries_total"].samples
    assert sample.labels == {
        "policy": "ring", "status": "racy", "detector": "postmortem",
    }
    assert sample.value == 2.0
    assert "hunt_job_duration_seconds" in families


def test_status_endpoint_carries_hunt_id_and_counters(served):
    _, _, url = served
    status, headers, body = _get(url + "/status")
    assert status == 200
    assert headers["Content-Type"] == "application/json"
    snapshot = json.loads(body)
    assert snapshot["t"] == "hunt_status"
    assert snapshot["hunt_id"] == "cafe1234feed5678"
    assert snapshot["hunt"]["workload"] == "workqueue-buggy"
    assert snapshot["seeds"] == {"settled": 2, "remaining": 6, "total": 8}
    assert snapshot["racy"] == 2
    assert snapshot["tries_by_policy"] == {"ring": 2}
    assert snapshot["tries_by_status"] == {"racy": 2}
    assert snapshot["tries_by_detector"] == {"postmortem": 2}
    assert snapshot["coverage"] == {
        "fingerprints": 2, "provenance_partitions": 1,
    }
    assert snapshot["job_duration_sec"]["count"] == 1


def test_unknown_path_is_404(served):
    _, _, url = served
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(url + "/nope")
    assert excinfo.value.code == 404


def test_scrapes_are_counted(served):
    _, registry, url = served
    _get(url + "/metrics")
    _get(url + "/metrics")
    _get(url + "/status")
    scrapes = registry.get("hunt_scrapes_total")
    # the first /metrics scrape counts itself before rendering
    assert scrapes.value(endpoint="metrics") == 2
    assert scrapes.value(endpoint="status") == 1


def test_stop_closes_the_listener(served):
    server, _, url = served
    server.stop()
    with pytest.raises((urllib.error.URLError, OSError)):
        urllib.request.urlopen(url + "/healthz", timeout=1)


# ----------------------------------------------------------------------
# hunt_status on sparse registries
# ----------------------------------------------------------------------

def test_hunt_status_defaults_on_empty_registry():
    snapshot = hunt_status(MetricsRegistry(), {"tries": 12})
    assert snapshot["seeds"] == {"settled": 0, "remaining": 12, "total": 12}
    assert snapshot["throughput_per_sec"] is None
    assert snapshot["cache"]["hit_rate"] is None
    assert snapshot["job_duration_sec"] is None
    assert snapshot["hunt_id"] is None
