"""The observability layer: spans, counters, aggregation, export."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import (
    NULL_SPAN,
    Profiler,
    aggregate_records,
    check_profile,
    read_profile,
    validate_profile,
    write_profile,
)


class TestDisabled:
    def test_span_is_shared_null_handle(self):
        assert obs.active() is None
        assert not obs.enabled()
        assert obs.span("anything") is NULL_SPAN

    def test_null_span_is_inert(self):
        with obs.span("x") as sp:
            assert not sp.enabled
            sp.add("counter", 5)  # must not raise, must not record

    def test_count_is_noop(self):
        obs.count("nothing", 3)  # no active profiler: silently dropped


class TestRecording:
    def test_nesting_builds_paths_and_depths(self):
        prof = Profiler()
        with prof.activate():
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
            with obs.span("second"):
                pass
        assert [s.path for s in prof.spans] == ["outer", "second"]
        (inner,) = prof.spans[0].children
        assert inner.path == "outer/inner"
        assert inner.depth == 1
        assert prof.spans[0].duration >= inner.duration >= 0.0

    def test_counters_attach_to_innermost_open_span(self):
        prof = Profiler()
        with prof.activate():
            with obs.span("stage") as sp:
                assert sp.enabled
                sp.add("events", 3)
                sp.add("events", 2)
                obs.count("joins", 7)
            obs.count("toplevel")
        assert prof.spans[0].counters == {"events": 5, "joins": 7}
        assert prof.counters == {"toplevel": 1}

    def test_activation_restores_previous_profiler(self):
        outer, inner = Profiler(), Profiler()
        with outer.activate():
            assert obs.active() is outer
            with inner.activate():
                assert obs.active() is inner
            assert obs.active() is outer
        assert obs.active() is None

    def test_activation_restores_on_exception(self):
        prof = Profiler()
        with pytest.raises(RuntimeError):
            with prof.activate():
                with obs.span("doomed"):
                    raise RuntimeError("boom")
        assert obs.active() is None
        # the span was still closed with a duration
        assert prof.spans[0].duration >= 0.0
        assert prof._stack == []

    def test_peak_rss_captured_on_linux(self):
        prof = Profiler()
        with prof.activate(), obs.span("s"):
            pass
        assert prof.spans[0].peak_rss_kb is None \
            or prof.spans[0].peak_rss_kb > 0


class TestAggregation:
    def _records(self, *durs):
        prof = Profiler()
        with prof.activate():
            for dur in durs:
                with obs.span("job") as sp:
                    sp.add("executions", 1)
        records = prof.to_records()
        # overwrite timings deterministically for the assertion
        for record, dur in zip(records, durs):
            record["dur_sec"] = dur
        return records

    def test_fold_across_workers(self):
        agg = aggregate_records(
            [self._records(0.1, 0.3), self._records(0.2)]
        )
        job = agg["job"]
        assert job.count == 3
        assert job.total_sec == pytest.approx(0.6)
        assert job.min_sec == pytest.approx(0.1)
        assert job.max_sec == pytest.approx(0.3)
        assert job.counters == {"executions": 3}

    def test_add_aggregates_merges(self):
        prof = Profiler()
        prof.add_aggregates(aggregate_records([self._records(0.1)]))
        prof.add_aggregates(aggregate_records([self._records(0.4)]))
        job = prof.aggregates["job"]
        assert job.count == 2
        assert job.max_sec == pytest.approx(0.4)
        assert any(line.startswith("aggregated")
                   for line in prof.summary().splitlines())


class TestExport:
    def _profiled(self):
        prof = Profiler()
        with prof.activate():
            with obs.span("detect") as sp:
                sp.add("races", 2)
                with obs.span("hb1.build"):
                    pass
        return prof

    def test_to_json_shape(self):
        doc = self._profiled().to_json()
        assert doc["format"] == 1
        assert [s["path"] for s in doc["spans"]] == \
            ["detect", "detect/hb1.build"]
        assert doc["spans"][0]["counters"] == {"races": 2}
        json.dumps(doc)  # must be serializable as-is

    def test_write_read_validate_roundtrip(self, tmp_path):
        path = tmp_path / "profile.jsonl"
        write_profile(self._profiled(), path, meta={"command": "test"})
        doc = read_profile(path)
        assert doc["meta"]["command"] == "test"
        assert doc["meta"]["format"] == 1
        assert [s["path"] for s in doc["spans"]] == \
            ["detect", "detect/hb1.build"]
        assert validate_profile(path) == []

    def test_validate_flags_garbage(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"t": "span"}\nnot json\n', encoding="utf-8")
        problems = validate_profile(path)
        assert problems  # missing meta line, bad JSON, missing fields

    def test_validate_rejects_unknown_format_version(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"t": "meta", "format": 99}\n', encoding="utf-8")
        problems = validate_profile(path)
        assert problems == [
            "unknown format version 99 (this reader understands 1)"
        ]

    @pytest.mark.parametrize("version", ['"1"', "true", "1.5", "null"])
    def test_validate_rejects_non_integer_format(self, tmp_path, version):
        path = tmp_path / "typed.jsonl"
        path.write_text(
            '{"t": "meta", "format": %s}\n' % version, encoding="utf-8"
        )
        problems = validate_profile(path)
        assert len(problems) == 1
        assert "format version is not an integer" in problems[0]

    def test_validate_rejects_missing_format(self, tmp_path):
        path = tmp_path / "bare.jsonl"
        path.write_text('{"t": "meta"}\n', encoding="utf-8")
        assert validate_profile(path) == [
            "meta record has no format version"
        ]

    def test_truncated_tail_is_a_warning(self, tmp_path):
        """A profile torn at the final line (writer killed mid-write
        on a pre-atomic file, or a copy cut short) keeps its valid
        prefix; validation warns instead of failing."""
        path = tmp_path / "torn.jsonl"
        write_profile(self._profiled(), path, meta={"command": "test"})
        with path.open("rb+") as fh:
            fh.truncate(path.stat().st_size - 5)
        problems, warnings = check_profile(path)
        assert problems == []
        assert len(warnings) == 1
        assert "truncated final record" in warnings[0]
        assert validate_profile(path) == []

    def test_mid_file_garbage_is_a_problem(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        write_profile(self._profiled(), path, meta={"command": "test"})
        lines = path.read_text(encoding="utf-8").splitlines()
        lines.insert(1, "{definitely not json")
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        problems, warnings = check_profile(path)
        assert warnings == []
        assert any("invalid JSON" in p for p in problems)

    def test_write_profile_is_atomic_no_temp_left(self, tmp_path):
        path = tmp_path / "profile.jsonl"
        write_profile(self._profiled(), path)
        assert validate_profile(path) == []
        # no stray .tmp files from the atomic write
        assert [p.name for p in tmp_path.iterdir()] == ["profile.jsonl"]

    def test_summary_handles_empty_profile(self):
        assert Profiler().summary() == "(empty profile)"
