"""Prometheus exposition tests: golden rendering (TYPE/HELP lines,
label escaping, cumulative histogram buckets with +Inf), the vendored
strict parser as referee (render → parse round-trip), and the parser's
rejection cases — each golden expectation is validated against the
parser, never just eyeballed."""

import math

import pytest

from repro.obs.exporters import (
    ExpositionError,
    main,
    parse_exposition,
    render_prometheus,
    render_records,
)
from repro.obs.metrics import MetricsRegistry


def _hunt_registry():
    reg = MetricsRegistry()
    reg.counter(
        "hunt_tries_total", "settled tries",
        labels=("policy", "status"),
    ).inc(3, policy="ring", status="racy")
    reg.counter(
        "hunt_tries_total", labels=("policy", "status"),
    ).inc(policy="stubborn", status="clean")
    reg.gauge("hunt_done", "completed jobs").set(4)
    reg.histogram(
        "hunt_job_duration_seconds", "per-job wall time",
        buckets=(0.01, 0.1, 1.0),
    ).observe(0.05)
    reg.histogram("hunt_job_duration_seconds").observe(7.0)
    reg.timeseries("hunt_throughput", "jobs/sec").record(1.0, 80.0)
    reg.timeseries("hunt_throughput").record(2.0, 120.0)
    return reg


# ----------------------------------------------------------------------
# golden rendering
# ----------------------------------------------------------------------

def test_render_counter_gauge_golden():
    text = render_prometheus(_hunt_registry())
    assert "# HELP hunt_tries_total settled tries" in text
    assert "# TYPE hunt_tries_total counter" in text
    assert 'hunt_tries_total{policy="ring",status="racy"} 3' in text
    assert 'hunt_tries_total{policy="stubborn",status="clean"} 1' in text
    assert "# TYPE hunt_done gauge" in text
    assert "hunt_done 4" in text
    # a timeseries exports as a gauge carrying the latest sample
    assert "# TYPE hunt_throughput gauge" in text
    assert "hunt_throughput 120" in text
    assert text.endswith("\n")


def test_render_histogram_cumulative_with_inf():
    text = render_prometheus(_hunt_registry())
    lines = text.splitlines()
    assert "# TYPE hunt_job_duration_seconds histogram" in lines
    # internal storage is per-bucket; exposition must be cumulative
    assert 'hunt_job_duration_seconds_bucket{le="0.01"} 0' in lines
    assert 'hunt_job_duration_seconds_bucket{le="0.1"} 1' in lines
    assert 'hunt_job_duration_seconds_bucket{le="1"} 1' in lines
    assert 'hunt_job_duration_seconds_bucket{le="+Inf"} 2' in lines
    assert "hunt_job_duration_seconds_count 2" in lines
    assert any(
        line.startswith("hunt_job_duration_seconds_sum ") for line in lines
    )


def test_render_escapes_label_values():
    reg = MetricsRegistry()
    reg.counter("errs", 'messages with "quotes"\nand newlines',
                labels=("msg",)).inc(msg='say "hi"\nback\\slash')
    text = render_prometheus(reg)
    assert '# HELP errs messages with "quotes"\\nand newlines' in text
    assert 'errs{msg="say \\"hi\\"\\nback\\\\slash"} 1' in text
    # the parser recovers the original value exactly
    families = parse_exposition(text)
    (sample,) = families["errs"].samples
    assert sample.labels["msg"] == 'say "hi"\nback\\slash'


def test_render_golden_validates_against_parser():
    families = parse_exposition(render_prometheus(_hunt_registry()))
    assert families["hunt_tries_total"].type == "counter"
    assert families["hunt_done"].type == "gauge"
    assert families["hunt_job_duration_seconds"].type == "histogram"
    tries = {
        (s.labels["policy"], s.labels["status"]): s.value
        for s in families["hunt_tries_total"].samples
    }
    assert tries == {("ring", "racy"): 3.0, ("stubborn", "clean"): 1.0}
    buckets = {
        s.labels["le"]: s.value
        for s in families["hunt_job_duration_seconds"].samples
        if s.name.endswith("_bucket")
    }
    assert buckets["+Inf"] == 2.0


def test_render_empty_registry_is_empty_exposition():
    assert render_prometheus(MetricsRegistry()) == ""
    assert parse_exposition("") == {}


def test_render_rejects_duplicate_family_and_bad_names():
    record = {"t": "metric", "kind": "counter", "name": "x",
              "labels": [], "series": []}
    with pytest.raises(ExpositionError, match="duplicate"):
        render_records([record, dict(record)])
    with pytest.raises(ExpositionError, match="invalid metric name"):
        render_records([dict(record, name="bad-name")])
    with pytest.raises(ExpositionError, match="reserved"):
        render_records([dict(record, labels=["le"])])
    with pytest.raises(ExpositionError, match="unexportable"):
        render_records([dict(record, kind="sparkline")])


def test_render_skips_foreign_records():
    assert render_records([{"t": "span", "name": "not-a-metric"}]) == ""


# ----------------------------------------------------------------------
# parser rejections
# ----------------------------------------------------------------------

@pytest.mark.parametrize("text,fragment", [
    ("x{-} 1\n", "malformed label block"),
    ('x{a="unterminated} 1\n', "unterminated label value"),
    ('x{a="v",a="w"} 1\n', "duplicate label"),
    ('x{a="bad\\q"} 1\n', "invalid escape"),
    ("x 1\nx 2\n", "duplicate sample"),
    ("# TYPE x counter\n# TYPE x counter\nx 1\n", "duplicate TYPE"),
    ("x 1\n# TYPE x counter\n", "after its samples"),
    ("# TYPE x flywheel\n", "unknown metric type"),
    ("# TYPE 9bad counter\n", "invalid TYPE metric name"),
    ("just words\n", "unparseable sample"),
    ("x notanumber\n", "unparseable sample value"),
    ('x{__name__="y"} 1\n', "reserved label name"),
])
def test_parse_rejects_spec_violations(text, fragment):
    with pytest.raises(ExpositionError, match=fragment):
        parse_exposition(text)


def test_parse_rejects_histogram_invariant_violations():
    missing_inf = (
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 2\n'
        "h_count 2\n"
    )
    with pytest.raises(ExpositionError, match="no '\\+Inf' bucket"):
        parse_exposition(missing_inf)
    non_cumulative = (
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 5\n'
        'h_bucket{le="2"} 3\n'
        'h_bucket{le="+Inf"} 5\n'
    )
    with pytest.raises(ExpositionError, match="non-cumulative"):
        parse_exposition(non_cumulative)
    inf_count_mismatch = (
        "# TYPE h histogram\n"
        'h_bucket{le="+Inf"} 5\n'
        "h_count 6\n"
    )
    with pytest.raises(ExpositionError, match="!= _count"):
        parse_exposition(inf_count_mismatch)
    missing_le = (
        "# TYPE h histogram\n"
        'h_bucket{x="1"} 5\n'
    )
    with pytest.raises(ExpositionError, match="without 'le'"):
        parse_exposition(missing_le)


def test_parse_accepts_timestamps_comments_and_inf_values():
    text = (
        "# a free comment\n"
        "# TYPE x gauge\n"
        "x 1.5 1700000000000\n"
        "y +Inf\n"
        "z NaN\n"
    )
    families = parse_exposition(text)
    assert families["x"].samples[0].value == 1.5
    assert families["y"].samples[0].value == math.inf
    assert math.isnan(families["z"].samples[0].value)


# ----------------------------------------------------------------------
# command-line validator (what CI runs on the scraped payload)
# ----------------------------------------------------------------------

def test_main_validates_files(tmp_path, capsys):
    good = tmp_path / "good.prom"
    good.write_text(render_prometheus(_hunt_registry()), encoding="utf-8")
    assert main([str(good)]) == 0
    out = capsys.readouterr().out
    assert "ok (" in out and "families" in out

    bad = tmp_path / "bad.prom"
    bad.write_text("x{-} 1\n", encoding="utf-8")
    assert main([str(bad)]) == 1
    assert "malformed exposition" in capsys.readouterr().err

    assert main([]) == 2
    assert main([str(tmp_path / "missing.prom")]) == 1
