"""Robustness verdicts through the observability stack.

A verified hunt must fold `hunt_robust_tries_total{model,verdict}`
parent-side, surface `robustness_by_verdict` on `/status`, write the
per-try `robust` key into the events log (still schema-valid), and
light up the verdict line in `weakraces top` — from both sources.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.analysis.hunting import hunt_races
from repro.machine.models import make_model
from repro.obs.events import HuntEventLog, read_events, validate_events
from repro.obs.metrics import MetricsRegistry
from repro.obs.server import TelemetryServer, hunt_status
from repro.obs.top import (
    TopSnapshot,
    render_top,
    snapshot_from_events,
    snapshot_from_http,
)
from repro.programs.litmus import store_buffering_program


def _tso():
    return make_model("TSO")


@pytest.fixture
def verified_hunt(tmp_path):
    """One verified TSO store-buffering hunt with the full observer
    stack attached: registry fold + events log."""
    registry = MetricsRegistry()
    path = tmp_path / "hunt.jsonl"
    log = HuntEventLog(path, meta={"workload": "store-buffering",
                                   "model": "TSO", "tries": 16,
                                   "jobs": 1, "policies": "default"})
    result = hunt_races(
        store_buffering_program(), _tso, tries=16, jobs=1,
        verify_robustness=True, metrics=registry,
        on_outcome=log.on_outcome,
    )
    log.write_summary({"tries": result.tries})
    log.close()
    return result, registry, path


def test_metrics_fold_by_verdict(verified_hunt):
    result, registry, _ = verified_hunt
    counter = registry.get("hunt_robust_tries_total")
    by_verdict = {}
    for entry in counter.series():
        assert entry["labels"]["model"] == "TSO"
        by_verdict[entry["labels"]["verdict"]] = entry["value"]
    assert by_verdict.get("robust", 0) == result.robust_tries
    assert by_verdict.get("non-robust", 0) == result.non_robust_tries
    assert sum(by_verdict.values()) == result.verified_tries


def test_status_snapshot_carries_breakdown(verified_hunt):
    result, registry, _ = verified_hunt
    status = hunt_status(registry, {"hunt_id": "cafe"})
    assert status["robustness_by_verdict"] == {
        "robust": result.robust_tries,
        "non-robust": result.non_robust_tries,
    }


def test_status_endpoint_serves_breakdown(verified_hunt):
    _, registry, _ = verified_hunt
    server = TelemetryServer(registry, info={"hunt_id": "cafe"})
    url = server.start()
    try:
        with urllib.request.urlopen(f"{url}/status", timeout=5) as resp:
            status = json.loads(resp.read())
        assert status["robustness_by_verdict"]
        snap = snapshot_from_http(url)
        assert snap.robust_by_verdict == status["robustness_by_verdict"]
    finally:
        server.stop()


def test_events_carry_robust_key(verified_hunt):
    result, _, path = verified_hunt
    assert validate_events(path) == []
    tries = read_events(path)["tries"]
    assert len(tries) == result.tries
    assert all("robust" in r for r in tries)
    assert sum(1 for r in tries if r["robust"] is False) == \
        result.non_robust_tries


def test_unverified_hunt_events_have_no_robust_key(tmp_path):
    path = tmp_path / "hunt.jsonl"
    log = HuntEventLog(path, meta={})
    hunt_races(store_buffering_program(), _tso, tries=4, jobs=1,
               on_outcome=log.on_outcome)
    log.close()
    tries = read_events(path)["tries"]
    assert all("robust" not in r for r in tries)


def test_top_snapshot_from_events(verified_hunt):
    result, _, path = verified_hunt
    snap = snapshot_from_events(path)
    assert snap.robust_by_verdict == {
        "robust": result.robust_tries,
        "non-robust": result.non_robust_tries,
    }


def test_top_render_verdict_line(verified_hunt):
    result, _, path = verified_hunt
    frame = render_top(snapshot_from_events(path))
    assert "robustness:" in frame
    assert ("SOUNDNESS DEGRADED" in frame) == \
        (result.non_robust_tries > 0)


def test_top_render_sc_justified():
    snap = TopSnapshot(source="x", robust_by_verdict={"robust": 5.0})
    frame = render_top(snap)
    assert "sc-justified" in frame
    assert "5 robust, 0 non-robust of 5 verified" in frame


def test_top_render_no_line_when_unverified():
    assert "robustness:" not in render_top(TopSnapshot(source="x"))
