"""Static race detection tests: conservative superset behaviour."""

from repro.machine.models import make_model
from repro.machine.simulator import run_program
from repro.core.detector import PostMortemDetector
from repro.programs.figure1 import figure1a_program, figure1b_program
from repro.programs.kernels import (
    independent_work_program,
    locked_counter_program,
    producer_consumer_program,
    racy_counter_program,
    region_then_lock_program,
)
from repro.programs.workqueue import (
    buggy_workqueue_program,
    fixed_workqueue_program,
)
from repro.staticanalysis.races import find_static_races


def test_figure1a_statically_racy():
    report = find_static_races(figure1a_program())
    assert report.potentially_racy
    locations = {
        report.program.symbols.name_of(a)
        for race in report.races
        for a in range(race.a.region.lo, race.a.region.hi)
    }
    assert locations == {"x", "y"}


def test_figure1b_not_fully_clean_is_acceptable_conservatism():
    """Figure 1b synchronizes with a lock *initially held by P1* that
    P1 never acquires via Test&Set — a discipline the lockset analysis
    cannot see, so it conservatively flags the accesses.  This is the
    classic false positive of static lockset analysis; the dynamic
    detector then exonerates every execution."""
    static = find_static_races(figure1b_program())
    assert static.potentially_racy  # conservative false positive
    result = run_program(figure1b_program(), make_model("WO"), seed=0)
    dynamic = PostMortemDetector().analyze_execution(result)
    assert dynamic.race_free  # dynamic refinement


def test_locked_counter_statically_clean():
    report = find_static_races(locked_counter_program(3, 2))
    assert not report.potentially_racy
    assert "statically data-race-free" in report.format()


def test_racy_counter_statically_racy():
    report = find_static_races(racy_counter_program(2, 2))
    assert report.potentially_racy


def test_region_then_lock_statically_clean():
    report = find_static_races(region_then_lock_program(2, 3, 2))
    assert not report.potentially_racy


def test_independent_work_statically_clean():
    # Constant-index disjoint accesses: provably clean statically.
    report = find_static_races(independent_work_program(3, 3))
    assert not report.potentially_racy


def test_register_indexed_access_widens_to_array():
    """With register indices the analysis aliases the whole array —
    disjoint-by-construction regions are conservatively flagged."""
    from repro.machine.program import ProgramBuilder
    b = ProgramBuilder()
    arr = b.array("arr", 8)
    with b.thread() as t:
        i = t.mov(0)
        t.write(b.at(arr, i), 1)  # dynamically only arr[0]
    with b.thread() as t:
        j = t.mov(4)
        t.write(b.at(arr, j), 2)  # dynamically only arr[4]
    report = find_static_races(b.build())
    assert report.potentially_racy  # documented conservatism
    race = report.races[0]
    assert race.a.region.hi - race.a.region.lo == 8  # whole array


def test_producer_consumer_flag_sync_is_flagged():
    """Flag (release/acquire) ordering is invisible to locksets: the
    buffer accesses are flagged statically even though every execution
    is race-free — exactly why the paper pairs static with dynamic."""
    static = find_static_races(producer_consumer_program(3))
    assert static.potentially_racy
    result = run_program(producer_consumer_program(3), make_model("WO"), seed=1)
    assert PostMortemDetector().analyze_execution(result).race_free


def test_workqueue_buggy_vs_fixed():
    buggy = find_static_races(buggy_workqueue_program())
    fixed = find_static_races(fixed_workqueue_program())
    buggy_q_races = [
        r for r in buggy.races
        if r.a.region.hi - r.a.region.lo == 1
        and buggy.program.symbols.name_of(r.a.region.lo) in ("Q", "QEmpty")
    ]
    fixed_q_races = [
        r for r in fixed.races
        if r.a.region.hi - r.a.region.lo == 1
        and fixed.program.symbols.name_of(r.a.region.lo) in ("Q", "QEmpty")
    ]
    assert buggy_q_races      # the missing Test&Set is visible statically
    assert not fixed_q_races  # the lock discipline removes those reports


def test_static_superset_of_dynamic():
    """Every dynamic race location must be covered by some static race
    region (static analysis reports a superset)."""
    for program in (figure1a_program(), racy_counter_program(2, 2),
                    buggy_workqueue_program()):
        static = find_static_races(program)
        static_locs = set()
        for race in static.races:
            for access in (race.a, race.b):
                static_locs.update(range(access.region.lo, access.region.hi))
        result = run_program(program, make_model("SC"), seed=3)
        dynamic = PostMortemDetector().analyze_execution(result)
        for race in dynamic.data_races:
            for addr in race.locations:
                assert addr in static_locs


def test_sync_sync_pairs_not_reported():
    from repro.machine.program import ProgramBuilder
    b = ProgramBuilder()
    s = b.var("s")
    with b.thread() as t:
        t.unset(s)
    with b.thread() as t:
        t.unset(s)
    report = find_static_races(b.build())
    assert not report.potentially_racy


def test_same_thread_never_races():
    from repro.machine.program import ProgramBuilder
    b = ProgramBuilder()
    x = b.var("x")
    with b.thread() as t:
        t.write(x, 1)
        t.write(x, 2)
    report = find_static_races(b.build())
    assert not report.potentially_racy


def test_report_format():
    report = find_static_races(figure1a_program())
    text = report.format()
    assert "potential data race" in text
    assert "T0@" in text and "T1@" in text


def test_dead_code_not_analyzed():
    from repro.machine.program import ProgramBuilder
    b = ProgramBuilder()
    x = b.var("x")
    with b.thread() as t:
        t.jump("end")
        t.write(x, 1)  # unreachable write
        t.label("end")
    with b.thread() as t:
        t.read(x)
    report = find_static_races(b.build())
    assert not report.potentially_racy
