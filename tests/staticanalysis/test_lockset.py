"""Lockset dataflow tests."""

from repro.machine.isa import Opcode
from repro.machine.program import ProgramBuilder
from repro.staticanalysis.lockset import compute_locksets


def _thread(builder_fn):
    b = ProgramBuilder()
    builder_fn(b)
    program = b.build()
    return program, program.threads[0]


def _lockset_at_opcode(program, thread, opcode, occurrence=0):
    locksets = compute_locksets(thread)
    count = 0
    for i, instr in enumerate(thread.instructions):
        if instr.opcode is opcode and i in locksets:
            if count == occurrence:
                return locksets[i].held
            count += 1
    raise AssertionError(f"no reachable {opcode} #{occurrence}")


def test_lock_idiom_acquires():
    def build(b):
        s = b.var("s")
        x = b.var("x")
        with b.thread() as t:
            t.lock(s)
            t.write(x, 1)     # inside the critical section
            t.unlock(s)
            t.write(x, 2)     # outside
    program, thread = _thread(build)
    s = program.symbols.addr_of("s")
    locksets = compute_locksets(thread)
    writes = [i for i, ins in enumerate(thread.instructions)
              if ins.opcode is Opcode.WRITE]
    assert locksets[writes[0]].held == frozenset({s})
    assert locksets[writes[1]].held == frozenset()


def test_unset_releases():
    def build(b):
        s = b.var("s")
        x = b.var("x")
        with b.thread() as t:
            t.lock(s)
            t.unset(s)
            t.write(x, 1)
    program, thread = _thread(build)
    locksets = compute_locksets(thread)
    write = [i for i, ins in enumerate(thread.instructions)
             if ins.opcode is Opcode.WRITE][0]
    assert locksets[write].held == frozenset()


def test_nested_locks():
    def build(b):
        s1, s2 = b.var("s1"), b.var("s2")
        x = b.var("x")
        with b.thread() as t:
            t.lock(s1)
            t.lock(s2)
            t.write(x, 1)
            t.unlock(s2)
            t.write(x, 2)
            t.unlock(s1)
    program, thread = _thread(build)
    s1 = program.symbols.addr_of("s1")
    s2 = program.symbols.addr_of("s2")
    locksets = compute_locksets(thread)
    writes = [i for i, ins in enumerate(thread.instructions)
              if ins.opcode is Opcode.WRITE]
    assert locksets[writes[0]].held == frozenset({s1, s2})
    assert locksets[writes[1]].held == frozenset({s1})


def test_branch_merge_is_intersection():
    """A location locked on only one branch arm is not definitely held
    at the join point."""
    def build(b):
        s = b.var("s")
        x = b.var("x")
        cond = b.var("cond")
        with b.thread() as t:
            c = t.read(cond)
            t.jump_if_zero(c, "skip")
            t.lock(s)
            t.label("skip")
            t.write(x, 1)  # join point: lock NOT definitely held
    program, thread = _thread(build)
    locksets = compute_locksets(thread)
    write = [i for i, ins in enumerate(thread.instructions)
             if ins.opcode is Opcode.WRITE][0]
    assert locksets[write].held == frozenset()


def test_loop_keeps_lock_if_held_on_all_paths():
    def build(b):
        s = b.var("s")
        x = b.var("x")
        with b.thread() as t:
            t.lock(s)
            i = t.mov(0)
            t.label("loop")
            t.write(x, 1)
            t.add(i, 1, dst=i)
            cond = t.cmp_lt(i, 3)
            t.jump_if_nonzero(cond, "loop")
            t.unlock(s)
    program, thread = _thread(build)
    s = program.symbols.addr_of("s")
    locksets = compute_locksets(thread)
    write = [i for i, ins in enumerate(thread.instructions)
             if ins.opcode is Opcode.WRITE][0]
    assert locksets[write].held == frozenset({s})


def test_failed_ts_path_not_held():
    """Inside the spin loop (back at the Test&Set) the lock is not
    considered held."""
    def build(b):
        s = b.var("s")
        with b.thread() as t:
            t.lock(s)
    program, thread = _thread(build)
    locksets = compute_locksets(thread)
    ts = [i for i, ins in enumerate(thread.instructions)
          if ins.opcode is Opcode.TEST_AND_SET][0]
    assert locksets[ts].held == frozenset()


def test_clobbered_binding_no_refinement():
    """If the Test&Set result register is overwritten before the
    branch, the analysis must not acquire the lock."""
    from repro.machine.isa import Addr, Imm, Instruction, Opcode as Op, Reg
    from repro.machine.program import ThreadProgram
    r = Reg("r")
    thread = ThreadProgram(
        instructions=(
            Instruction(Op.TEST_AND_SET, dst=r, addr=Addr(0)),
            Instruction(Op.MOV, dst=r, src=(Imm(0),)),   # clobber
            Instruction(Op.BNZ, src=(r,), label="top"),
            Instruction(Op.WRITE, src=(Imm(1),), addr=Addr(1)),
            Instruction(Op.HALT),
        ),
        labels={"top": 0},
    )
    locksets = compute_locksets(thread)
    assert locksets[3].held == frozenset()
