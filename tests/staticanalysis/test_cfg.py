"""CFG construction tests."""

from repro.machine.program import ProgramBuilder
from repro.staticanalysis.cfg import basic_blocks, build_cfg


def _thread(builder_fn):
    b = ProgramBuilder()
    builder_fn(b)
    return b.build().threads[0]


def test_straight_line():
    def build(b):
        x = b.var("x")
        with b.thread() as t:
            t.write(x, 1)
            t.write(x, 2)
    thread = _thread(build)
    cfg = build_cfg(thread)
    # write -> write -> halt -> exit
    assert cfg.successors[0] == [1]
    assert cfg.successors[1] == [2]
    assert cfg.successors[2] == [cfg.exit_node]


def test_branch_has_two_successors():
    def build(b):
        x = b.var("x")
        with b.thread() as t:
            r = t.mov(0)
            t.jump_if_zero(r, "skip")
            t.write(x, 1)
            t.label("skip")
            t.write(x, 2)
    thread = _thread(build)
    cfg = build_cfg(thread)
    branch = 1
    assert len(cfg.successors[branch]) == 2
    assert set(cfg.successors[branch]) == {2, 3}


def test_jump_no_fallthrough():
    def build(b):
        x = b.var("x")
        with b.thread() as t:
            t.jump("end")
            t.write(x, 1)
            t.label("end")
            t.write(x, 2)
    thread = _thread(build)
    cfg = build_cfg(thread)
    assert cfg.successors[0] == [2]


def test_unreachable_excluded():
    def build(b):
        x = b.var("x")
        with b.thread() as t:
            t.jump("end")
            t.write(x, 1)  # dead
            t.label("end")
            t.write(x, 2)
    thread = _thread(build)
    cfg = build_cfg(thread)
    reachable = cfg.reachable_instructions()
    assert 1 not in reachable
    assert {0, 2} <= reachable


def test_loop_back_edge():
    def build(b):
        x = b.var("x")
        with b.thread() as t:
            i = t.mov(0)
            t.label("loop")
            t.write(x, 1)
            t.add(i, 1, dst=i)
            cond = t.cmp_lt(i, 3)
            t.jump_if_nonzero(cond, "loop")
    thread = _thread(build)
    cfg = build_cfg(thread)
    branch = 4
    assert 1 in cfg.successors[branch]  # back edge to the loop body
    assert 1 in cfg.predecessors[1] or branch in cfg.predecessors[1]


def test_predecessors_mirror_successors():
    def build(b):
        x = b.var("x")
        with b.thread() as t:
            r = t.mov(1)
            t.jump_if_nonzero(r, "end")
            t.write(x, 1)
            t.label("end")
    thread = _thread(build)
    cfg = build_cfg(thread)
    for src, dsts in cfg.successors.items():
        for dst in dsts:
            assert src in cfg.predecessors[dst]


def test_basic_blocks_cover_reachable():
    def build(b):
        x = b.var("x")
        with b.thread() as t:
            i = t.mov(0)
            t.label("loop")
            t.write(x, 1)
            t.add(i, 1, dst=i)
            cond = t.cmp_lt(i, 3)
            t.jump_if_nonzero(cond, "loop")
            t.write(x, 9)
    thread = _thread(build)
    cfg = build_cfg(thread)
    blocks = basic_blocks(cfg)
    covered = set()
    for start, end in blocks:
        covered.update(range(start, end))
    assert cfg.reachable_instructions() <= covered
    # the loop head starts a block
    assert any(start == 1 for start, _ in blocks)


def test_empty_thread():
    b = ProgramBuilder()
    with b.thread() as t:
        pass  # builder appends HALT
    thread = b.build().threads[0]
    cfg = build_cfg(thread)
    assert cfg.reachable_instructions() == {0}
    assert basic_blocks(cfg) == [(0, 1)]
