"""Checkpoint unit tests: the spec identity, outcome round-trip,
atomicity, and the load-time validation (torn files, version skew,
spec mismatch)."""

import json

import pytest

from repro.analysis.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    CheckpointMismatch,
    CheckpointWriter,
    hunt_spec,
    load_checkpoint,
    outcome_from_payload,
    outcome_to_payload,
    program_fingerprint,
    save_checkpoint,
)
from repro.analysis.hunting import hunt_races
from repro.analysis.parallel import HuntJob, JobOutcome
from repro.machine.models import make_model
from repro.programs.kernels import locked_counter_program, racy_counter_program


def _wo():
    return make_model("WO")


def _spec(program=None, **overrides):
    spec = hunt_spec(
        program or racy_counter_program(), "WO", 12,
        ["stubborn", "ring"], 200_000, False,
    )
    spec.update(overrides)
    return spec


def _outcome(index=0, status="clean", **overrides):
    job = HuntJob(index=index, seed=index // 2, policy_index=index % 2,
                  policy_name=["stubborn", "ring"][index % 2])
    fields = dict(status=status, operations=40, fingerprint="abc",
                  duration=0.004)
    fields.update(overrides)
    return JobOutcome(job=job, **fields)


# ----------------------------------------------------------------------
# spec identity
# ----------------------------------------------------------------------

def test_program_fingerprint_tracks_program_text():
    a = program_fingerprint(racy_counter_program())
    b = program_fingerprint(racy_counter_program())
    c = program_fingerprint(locked_counter_program(2, 2))
    assert a == b
    assert a != c


def test_hunt_spec_fields():
    spec = _spec()
    assert set(spec) == {"program_sha", "model", "tries", "policies",
                        "max_steps", "stop_at_first", "detector",
                        "verify_robustness"}
    assert spec["policies"] == ["stubborn", "ring"]
    assert spec["detector"] == "postmortem"
    assert spec["verify_robustness"] is False


# ----------------------------------------------------------------------
# outcome round-trip
# ----------------------------------------------------------------------

def test_outcome_payload_round_trip():
    outcome = _outcome(3, status="error", error="RuntimeError: x",
                       traceback="tb", retries=2,
                       failure_kind="exhausted")
    back = outcome_from_payload(outcome_to_payload(outcome))
    assert back.job == outcome.job
    assert back.status == "error"
    assert back.error == "RuntimeError: x"
    assert back.retries == 2
    assert back.failure_kind == "exhausted"


def test_outcome_payload_is_json_safe():
    json.dumps(outcome_to_payload(_outcome()))


def test_outcome_from_payload_rejects_malformed():
    with pytest.raises(CheckpointError, match="malformed outcome"):
        outcome_from_payload({"index": 0})


def test_racy_outcome_carries_recording():
    result = hunt_races(racy_counter_program(), _wo, tries=4, jobs=1,
                        stop_at_first=True)
    assert result.found and result.recording is not None
    outcome = _outcome(0, status="racy", recording=result.recording,
                       report_digest="digest")
    back = outcome_from_payload(outcome_to_payload(outcome))
    assert back.recording is not None
    assert back.recording.schedule == result.recording.schedule
    assert back.recording.deliveries == result.recording.deliveries


def test_save_keeps_only_first_racy_recording(tmp_path):
    """Checkpoints stay small: the merge only ever attaches the
    lowest-index racy outcome's recording, so the others are
    stripped at save time."""
    result = hunt_races(racy_counter_program(), _wo, tries=4, jobs=1,
                        stop_at_first=True)
    assert result.recording is not None
    outcomes = [
        _outcome(1, status="racy", recording=result.recording),
        _outcome(5, status="racy", recording=result.recording),
        _outcome(3, status="clean"),
    ]
    path = tmp_path / "hunt.ckpt"
    save_checkpoint(path, _spec(), outcomes, complete=False)
    loaded = load_checkpoint(path)
    by_index = {o.job.index: o for o in loaded.outcomes}
    assert by_index[1].recording is not None  # the one the merge uses
    assert by_index[5].recording is None
    assert by_index[1].recording.schedule == result.recording.schedule


# ----------------------------------------------------------------------
# save / load validation
# ----------------------------------------------------------------------

def test_save_load_round_trip(tmp_path):
    path = tmp_path / "hunt.ckpt"
    outcomes = [_outcome(i) for i in (2, 0, 1)]  # unsorted on purpose
    save_checkpoint(path, _spec(), outcomes, complete=False)
    loaded = load_checkpoint(path, expected_spec=_spec())
    assert not loaded.complete
    assert [o.job.index for o in loaded.outcomes] == [0, 1, 2]
    assert loaded.settled_indices == {0, 1, 2}


def test_load_rejects_torn_json(tmp_path):
    path = tmp_path / "hunt.ckpt"
    save_checkpoint(path, _spec(), [_outcome(0)], complete=True)
    text = path.read_text()
    path.write_text(text[: len(text) // 2])
    with pytest.raises(CheckpointError, match="torn or corrupt"):
        load_checkpoint(path)


def test_load_rejects_unknown_format(tmp_path):
    path = tmp_path / "hunt.ckpt"
    path.write_text(json.dumps({
        "format": CHECKPOINT_FORMAT + 1, "complete": False,
        "spec": _spec(), "outcomes": [],
    }))
    with pytest.raises(CheckpointError, match="unknown checkpoint format"):
        load_checkpoint(path)


def test_load_rejects_missing_file(tmp_path):
    with pytest.raises(CheckpointError, match="unreadable"):
        load_checkpoint(tmp_path / "nope.ckpt")


def test_load_rejects_duplicate_indices(tmp_path):
    path = tmp_path / "hunt.ckpt"
    payload = {
        "format": CHECKPOINT_FORMAT, "complete": False, "spec": _spec(),
        "outcomes": [outcome_to_payload(_outcome(0)),
                     outcome_to_payload(_outcome(0))],
    }
    path.write_text(json.dumps(payload))
    with pytest.raises(CheckpointError, match="duplicate outcome"):
        load_checkpoint(path)


@pytest.mark.parametrize("field,value", [
    ("tries", 99),
    ("model", "SC"),
    ("policies", ["stubborn"]),
    ("max_steps", 5),
    ("stop_at_first", True),
    ("program_sha", "0" * 32),
    ("detector", "shb"),
])
def test_spec_mismatch_is_hard_error(tmp_path, field, value):
    path = tmp_path / "hunt.ckpt"
    save_checkpoint(path, _spec(), [], complete=False)
    with pytest.raises(CheckpointMismatch, match=field):
        load_checkpoint(path, expected_spec=_spec(**{field: value}))


def test_load_without_expected_spec_skips_validation(tmp_path):
    path = tmp_path / "hunt.ckpt"
    save_checkpoint(path, _spec(), [], complete=True)
    assert load_checkpoint(path).complete


def test_legacy_checkpoint_without_detector_is_postmortem(tmp_path):
    """Checkpoints written before the detector field existed were all
    produced by the only detector hunts then had; they must load (and
    resume) as postmortem, not error out."""
    path = tmp_path / "hunt.ckpt"
    spec = _spec()
    del spec["detector"]
    save_checkpoint(path, spec, [_outcome(0)], complete=False)
    loaded = load_checkpoint(path, expected_spec=_spec())
    assert loaded.spec["detector"] == "postmortem"
    # ...and a non-default detector still refuses the legacy file
    with pytest.raises(CheckpointMismatch, match="detector"):
        load_checkpoint(path, expected_spec=_spec(detector="wcp"))


def test_legacy_checkpoint_resumes_into_a_postmortem_hunt(tmp_path):
    """End to end: strip the detector field from a real checkpoint and
    resume — statistics must come out as if never interrupted."""
    program = racy_counter_program()
    path = tmp_path / "hunt.ckpt"
    full = hunt_races(program, _wo, tries=6, jobs=1)
    hunt_races(program, _wo, tries=6, jobs=1, checkpoint=path)
    payload = json.loads(path.read_text())
    del payload["spec"]["detector"]
    path.write_text(json.dumps(payload))
    resumed = hunt_races(
        program, _wo, tries=6, jobs=1, checkpoint=path, resume=True,
    )
    assert resumed.resumed_jobs == 6
    assert resumed.stats() == full.stats()
    with pytest.raises(CheckpointMismatch, match="detector"):
        hunt_races(
            program, _wo, tries=6, jobs=1,
            checkpoint=path, resume=True, detector="shb",
        )


# ----------------------------------------------------------------------
# the periodic writer
# ----------------------------------------------------------------------

def test_writer_persists_on_interval(tmp_path):
    path = tmp_path / "hunt.ckpt"
    writer = CheckpointWriter(path, _spec(), interval=3)
    outcomes = []
    for i in range(7):
        outcomes.append(_outcome(i))
        writer.tick(outcomes)
    assert writer.writes == 2  # after the 3rd and 6th outcome
    loaded = load_checkpoint(path)
    assert len(loaded.outcomes) == 6 and not loaded.complete
    writer.flush(outcomes, complete=True)
    loaded = load_checkpoint(path)
    assert len(loaded.outcomes) == 7 and loaded.complete


def test_writer_rejects_nonpositive_interval(tmp_path):
    with pytest.raises(ValueError):
        CheckpointWriter(tmp_path / "x", _spec(), interval=0)


def test_checkpoint_write_leaves_no_temp_files(tmp_path):
    path = tmp_path / "hunt.ckpt"
    save_checkpoint(path, _spec(), [_outcome(0)], complete=True)
    assert [p.name for p in tmp_path.iterdir()] == ["hunt.ckpt"]
