"""Robustness verdicts riding the hunt engine.

``run_hunt(verify_robustness=True)`` attaches an SC-justification
verdict to every try; the aggregates (and the first non-robust report)
must be identical serial vs parallel, survive checkpoint/resume
byte-for-byte, participate in the checkpoint spec identity, and leave
the legacy output byte-identical when off.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.checkpoint import (
    CheckpointMismatch,
    hunt_spec,
    load_checkpoint,
    outcome_from_payload,
    outcome_to_payload,
    save_checkpoint,
)
from repro.analysis.hunting import hunt_races
from repro.analysis.parallel import BatchOutcome, HuntJob, JobOutcome
from repro.core.robustness import RobustnessReport
from repro.machine.models import make_model
from repro.programs.kernels import locked_counter_program
from repro.programs.litmus import store_buffering_program


def _tso():
    return make_model("TSO")


def _sc():
    return make_model("SC")


def _hunt(jobs=1, tries=12, **kw):
    kw.setdefault("verify_robustness", True)
    return hunt_races(store_buffering_program(), _tso,
                      tries=tries, jobs=jobs, **kw)


# ----------------------------------------------------------------------
# aggregates and the degradation policy
# ----------------------------------------------------------------------

class TestAggregates:
    def test_verdict_on_every_try(self):
        result = _hunt()
        assert result.verify_robustness
        assert result.verified_tries == result.tries
        assert result.robust_tries + result.non_robust_tries == \
            result.verified_tries

    def test_sb_on_tso_degrades_soundness(self):
        result = _hunt(tries=16)
        assert result.non_robust_tries >= 1
        assert result.soundness == "degraded"
        assert result.first_non_robust is not None
        report = RobustnessReport.from_json(result.first_non_robust)
        assert not report.robust
        assert any(edge.kind == "fr" for edge in report.cycle)

    def test_sc_hunt_is_sc_justified(self):
        result = hunt_races(store_buffering_program(), _sc,
                            tries=8, jobs=1, verify_robustness=True)
        assert result.non_robust_tries == 0
        assert result.robust_tries == result.verified_tries == 8
        assert result.soundness == "sc-justified"
        assert result.first_non_robust is None

    def test_soundness_none_when_off(self):
        result = _hunt(verify_robustness=False)
        assert result.soundness is None
        assert result.verified_tries == 0

    def test_summary_mentions_degradation(self):
        text = _hunt(tries=16).summary()
        assert "robustness:" in text
        assert "SOUNDNESS DEGRADED" in text
        assert "SC-prefix boundary" in text

    def test_to_json_block(self):
        payload = _hunt(tries=16).to_json()
        rob = payload["robustness"]
        assert rob["verified_tries"] == 16
        assert rob["robust"] + rob["non_robust"] == 16
        assert rob["soundness"] == "degraded"
        assert rob["first_non_robust"]["kind"] == "robustness"
        json.dumps(payload)  # JSON-safe end to end

    def test_legacy_output_unchanged_when_off(self):
        result = _hunt(verify_robustness=False)
        assert "robustness" not in result.to_json()
        assert "robustness" not in result.summary()


# ----------------------------------------------------------------------
# serial == parallel
# ----------------------------------------------------------------------

class TestDeterminism:
    def test_parallel_matches_serial(self):
        serial = _hunt(jobs=1, tries=12)
        parallel = _hunt(jobs=4, tries=12)
        assert parallel.stats() == serial.stats()
        assert parallel.verified_tries == serial.verified_tries
        assert parallel.robust_tries == serial.robust_tries
        assert parallel.non_robust_tries == serial.non_robust_tries
        assert parallel.first_non_robust == serial.first_non_robust
        assert parallel.soundness == serial.soundness


# ----------------------------------------------------------------------
# wire format: JobOutcome -> BatchOutcome -> checkpoint payload
# ----------------------------------------------------------------------

def _outcome(index=0, **overrides):
    job = HuntJob(index=index, seed=index, policy_index=0,
                  policy_name="stubborn")
    fields = dict(status="clean", operations=6, fingerprint="abc",
                  duration=0.001)
    fields.update(overrides)
    return JobOutcome(job=job, **fields)


class TestWireFormat:
    def test_batch_round_trip_sparse(self):
        outcomes = [
            _outcome(0, robust=True),
            _outcome(1),  # unverified: stays None
            _outcome(2, robust=False,
                     robustness={"kind": "robustness", "robust": False}),
        ]
        batch = BatchOutcome.pack(outcomes)
        assert batch.robust == {0: True, 2: False}
        assert set(batch.robustness) == {2}
        back = batch.unfold({o.job.index: o.job for o in outcomes})
        assert [o.robust for o in back] == [True, None, False]
        assert back[1].robustness is None
        assert back[2].robustness == outcomes[2].robustness

    def test_checkpoint_payload_round_trip(self):
        outcome = _outcome(
            3, robust=False,
            robustness={"kind": "robustness", "robust": False})
        payload = outcome_to_payload(outcome)
        json.dumps(payload)
        clone = outcome_from_payload(payload)
        assert clone.robust is False
        assert clone.robustness == outcome.robustness

    def test_legacy_payload_defaults_none(self):
        payload = outcome_to_payload(_outcome(0))
        payload.pop("robust")
        payload.pop("robustness")
        clone = outcome_from_payload(payload)
        assert clone.robust is None and clone.robustness is None


# ----------------------------------------------------------------------
# checkpoint identity and resume
# ----------------------------------------------------------------------

class TestCheckpointing:
    def test_spec_records_flag(self):
        spec = hunt_spec(store_buffering_program(), "TSO", 8,
                         ["stubborn"], 200_000, False,
                         verify_robustness=True)
        assert spec["verify_robustness"] is True

    def test_spec_mismatch_on_flip(self, tmp_path):
        path = tmp_path / "hunt.ckpt"
        spec = hunt_spec(store_buffering_program(), "TSO", 8,
                         ["stubborn"], 200_000, False,
                         verify_robustness=False)
        save_checkpoint(path, spec, [], complete=False)
        expected = dict(spec, verify_robustness=True)
        with pytest.raises(CheckpointMismatch, match="verify_robustness"):
            load_checkpoint(path, expected_spec=expected)

    def test_legacy_spec_loads_as_unverified(self, tmp_path):
        path = tmp_path / "hunt.ckpt"
        spec = hunt_spec(store_buffering_program(), "TSO", 8,
                         ["stubborn"], 200_000, False)
        del spec["verify_robustness"]
        save_checkpoint(path, spec, [], complete=False)
        loaded = load_checkpoint(path)
        assert loaded.spec["verify_robustness"] is False

    def test_resume_preserves_verdicts_byte_identically(self, tmp_path):
        path = tmp_path / "hunt.ckpt"
        full = _hunt(tries=12)
        # interrupt-free partial: write a checkpoint, then resume it
        _hunt(tries=12, checkpoint=path)
        resumed = _hunt(tries=12, checkpoint=path, resume=True)
        assert resumed.resumed_jobs == 12
        assert resumed.stats() == full.stats()
        assert resumed.verified_tries == full.verified_tries
        assert resumed.robust_tries == full.robust_tries
        assert resumed.non_robust_tries == full.non_robust_tries
        assert json.dumps(resumed.first_non_robust, sort_keys=True) == \
            json.dumps(full.first_non_robust, sort_keys=True)

    def test_resume_refuses_unverified_checkpoint(self, tmp_path):
        path = tmp_path / "hunt.ckpt"
        _hunt(tries=6, verify_robustness=False, checkpoint=path)
        with pytest.raises(CheckpointMismatch, match="verify_robustness"):
            _hunt(tries=6, checkpoint=path, resume=True)


# ----------------------------------------------------------------------
# robustness never skipped by the trace cache
# ----------------------------------------------------------------------

def test_cache_hits_still_verified():
    """The trace cache can skip detector analysis but never the
    robustness verdict: a trace has no reads-from relation, so the
    verdict always comes from the live execution."""
    result = hunt_races(locked_counter_program(), _tso,
                        tries=10, jobs=1, verify_robustness=True,
                        trace_cache=True)
    assert result.verified_tries == result.tries
