"""Parallel hunt-engine tests: job planning, serial/parallel result
parity, deterministic merging, early stop, and failure isolation."""

import random
import time

import pytest

from repro.analysis.hunting import hunt_races
from repro.analysis.parallel import (
    HuntJob,
    JobOutcome,
    _HuntState,
    merge_outcomes,
    plan_jobs,
    run_hunt,
)
from repro.machine.models import make_model
from repro.machine.propagation import PropagationPolicy, StubbornPropagation
from repro.programs.figure1 import figure1a_program
from repro.programs.kernels import locked_counter_program, racy_counter_program
from repro.programs.workqueue import buggy_workqueue_program


def _wo():
    return make_model("WO")


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------

def test_plan_is_seed_major():
    plan = plan_jobs(7, ["a", "b", "c"])
    assert [(j.seed, j.policy_name) for j in plan] == [
        (0, "a"), (0, "b"), (0, "c"),
        (1, "a"), (1, "b"), (1, "c"),
        (2, "a"),
    ]
    assert [j.index for j in plan] == list(range(7))


def test_plan_rejects_empty_policies():
    with pytest.raises(ValueError):
        plan_jobs(4, [])


# ----------------------------------------------------------------------
# serial/parallel parity (the engine's core guarantee)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("jobs", [2, 3, 5])
def test_parallel_stats_identical_to_serial(jobs):
    serial = hunt_races(racy_counter_program(), _wo, tries=12, jobs=1)
    parallel = hunt_races(racy_counter_program(), _wo, tries=12, jobs=jobs)
    assert parallel.stats() == serial.stats()
    assert parallel.summary() == serial.summary()


def test_parallel_parity_on_clean_program():
    serial = hunt_races(locked_counter_program(2, 2), _wo, tries=6, jobs=1)
    parallel = hunt_races(locked_counter_program(2, 2), _wo, tries=6, jobs=2)
    assert parallel.stats() == serial.stats()
    assert not parallel.found


def test_parallel_stop_at_first_matches_serial():
    serial = hunt_races(
        buggy_workqueue_program(), _wo, tries=30, jobs=1, stop_at_first=True
    )
    parallel = hunt_races(
        buggy_workqueue_program(), _wo, tries=30, jobs=4, stop_at_first=True
    )
    assert serial.found and parallel.found
    assert parallel.stats() == serial.stats()
    assert parallel.tries == serial.tries < 30


def test_parallel_reconstructs_first_racy_execution():
    """Workers ship recordings, not executions; the parent must rebuild
    the racy execution by replay and end up with the same report."""
    serial = hunt_races(buggy_workqueue_program(), _wo, tries=9, jobs=1)
    parallel = hunt_races(buggy_workqueue_program(), _wo, tries=9, jobs=3)
    assert parallel.first_racy is not None
    assert parallel.first_report is not None
    assert parallel.recording_verified is True
    assert parallel.first_report.format() == serial.first_report.format()
    assert len(parallel.first_racy.operations) == \
           len(serial.first_racy.operations)


# ----------------------------------------------------------------------
# deterministic merge
# ----------------------------------------------------------------------

def _clean_outcomes(tries, policies):
    return [
        JobOutcome(job=job, status="clean", completed=True, operations=5)
        for job in plan_jobs(tries, policies)
    ]


def test_merge_is_independent_of_outcome_order():
    state = _HuntState(
        locked_counter_program(2, 2), _wo,
        [("stubborn", StubbornPropagation)], 1000, None,
    )
    outcomes = _clean_outcomes(9, ["stubborn"])
    baseline = merge_outcomes(state, outcomes, stop_at_first=False)
    for seed in range(5):
        shuffled = list(outcomes)
        random.Random(seed).shuffle(shuffled)
        merged = merge_outcomes(state, shuffled, stop_at_first=False)
        assert merged.stats() == baseline.stats()


def test_merge_discards_overrun_beyond_first_racy():
    """With stop_at_first, workers may complete jobs past the first
    racy index before the broadcast reaches them; the merge must drop
    those so the result matches the serial prefix."""
    state = _HuntState(
        figure1a_program(), _wo,
        [("stubborn", StubbornPropagation)], 1000, None,
    )
    outcomes = _clean_outcomes(6, ["stubborn"])
    outcomes[2] = JobOutcome(job=outcomes[2].job, status="racy")
    outcomes[4] = JobOutcome(job=outcomes[4].job, status="skipped")
    merged = merge_outcomes(state, outcomes, stop_at_first=True)
    assert merged.tries == 3
    assert merged.racy_runs == 1 and merged.clean_runs == 2
    # without the stop flag everything completed is counted
    merged_all = merge_outcomes(state, outcomes, stop_at_first=False)
    assert merged_all.tries == 5  # the skipped job is never counted


# ----------------------------------------------------------------------
# failure isolation
# ----------------------------------------------------------------------

class _ExplodingPropagation(PropagationPolicy):
    def step(self, memory, rng):
        raise RuntimeError("boom")


class _SleepyPropagation(PropagationPolicy):
    def step(self, memory, rng):
        time.sleep(5.0)


_MIXED = [
    ("boom", _ExplodingPropagation),
    ("stubborn", StubbornPropagation),
]


@pytest.mark.parametrize("jobs", [1, 2])
def test_crashing_policy_recorded_not_fatal(jobs):
    result = hunt_races(
        racy_counter_program(), _wo, tries=6, policies=_MIXED, jobs=jobs
    )
    assert result.tries == 6
    assert len(result.failures) == 3
    assert all(f.policy == "boom" for f in result.failures)
    assert all("RuntimeError: boom" in f.error for f in result.failures)
    # the healthy policy still hunted normally
    assert result.per_policy["stubborn"][1] == 3
    assert "boom" not in result.per_policy
    assert "FAILED seed=0 policy=boom" in result.summary()


def test_crash_parity_between_serial_and_parallel():
    serial = hunt_races(
        racy_counter_program(), _wo, tries=6, policies=_MIXED, jobs=1
    )
    parallel = hunt_races(
        racy_counter_program(), _wo, tries=6, policies=_MIXED, jobs=2
    )
    assert parallel.stats() == serial.stats()


def test_job_timeout_recorded_as_failure():
    result = hunt_races(
        racy_counter_program(), _wo, tries=1,
        policies=[("sleepy", _SleepyPropagation)],
        jobs=1, job_timeout=0.2,
    )
    assert result.tries == 1
    assert len(result.failures) == 1
    assert "JobTimeout" in result.failures[0].error
    assert not result.found


def test_step_bound_runs_flagged():
    result = hunt_races(
        racy_counter_program(), _wo, tries=3,
        policies=[("stubborn", StubbornPropagation)],
        max_steps=5,
    )
    assert result.step_bound_runs == 3
    assert "hit the step bound" in result.summary()


def test_run_hunt_validation():
    with pytest.raises(ValueError):
        run_hunt(
            racy_counter_program(), _wo, tries=0,
            policies=[("stubborn", StubbornPropagation)],
        )
    with pytest.raises(ValueError):
        run_hunt(racy_counter_program(), _wo, tries=3, policies=[])


def test_jobs_capped_at_job_count():
    result = hunt_races(racy_counter_program(), _wo, tries=2, jobs=16)
    assert result.jobs <= 2
