"""Retry-layer tests: transient vs deterministic classification,
backoff determinism, observer/metrics visibility of retried attempts,
and the merged result's invariance under retries."""

import pytest

from repro import faults
from repro.analysis.hunting import hunt_races
from repro.analysis.parallel import _retry_job, plan_jobs, run_hunt
from repro.faults import FaultPlan
from repro.machine.models import make_model
from repro.machine.propagation import PropagationPolicy, StubbornPropagation
from repro.obs import metrics
from repro.programs.kernels import racy_counter_program


def _wo():
    return make_model("WO")


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


class _FlakyOnce(PropagationPolicy):
    """Crashes every execution of the seed it is constructed into
    exactly once per process — driven through faults instead; kept
    here as documentation of the shape under test."""


# ----------------------------------------------------------------------
# classification
# ----------------------------------------------------------------------

@pytest.mark.parametrize("jobs", [1, 2])
def test_transient_crash_recovers_invisibly_in_stats(jobs):
    clean = hunt_races(racy_counter_program(), _wo, tries=12, jobs=jobs)
    # each job crashes exactly once; the retry succeeds with a fresh
    # (different) run, so the error never repeats and never settles
    faults.install(FaultPlan(crash={3: 1, 7: 1}))
    recovered = hunt_races(racy_counter_program(), _wo, tries=12,
                           jobs=jobs, retry_backoff=0.001)
    assert not recovered.failures
    assert recovered.stats() == clean.stats()
    assert recovered.retried_runs == 2
    assert recovered.to_json()["retried_runs"] == 2


def test_deterministic_crash_stops_after_identical_failure():
    faults.install(FaultPlan(crash={2: 99}))
    result = hunt_races(racy_counter_program(), _wo, tries=6, jobs=1,
                        max_retries=5, retry_backoff=0.001)
    assert len(result.failures) == 1
    failure = result.failures[0]
    assert failure.kind == "deterministic"
    # classified after ONE retry reproduced the error, not max_retries
    assert failure.retries == 1
    assert "InjectedCrash" in failure.error


def test_max_retries_zero_settles_immediately():
    faults.install(FaultPlan(crash={2: 99}))
    seen = []
    result = hunt_races(racy_counter_program(), _wo, tries=6, jobs=1,
                        max_retries=0, on_outcome=seen.append)
    assert len(result.failures) == 1
    assert result.failures[0].kind == "unretried"
    assert result.failures[0].retries == 0
    assert all(o.status != "retried" for o in seen)


def test_summary_shows_retry_provenance():
    faults.install(FaultPlan(crash={2: 99}))
    result = hunt_races(racy_counter_program(), _wo, tries=6, jobs=1,
                        retry_backoff=0.001)
    assert "[deterministic after 2 attempts]" in result.summary()


def test_unretried_failure_keeps_historical_summary_line():
    faults.install(FaultPlan(crash={2: 99}))
    result = hunt_races(racy_counter_program(), _wo, tries=6, jobs=1,
                        max_retries=0)
    line = [l for l in result.summary().splitlines() if "FAILED" in l][0]
    assert "[" not in line  # no suffix when nothing was retried


# ----------------------------------------------------------------------
# observer / metrics visibility
# ----------------------------------------------------------------------

def test_retried_attempts_visible_to_observer_and_metrics():
    faults.install(FaultPlan(crash={3: 1}))
    reg = metrics.MetricsRegistry()
    seen = []
    result = hunt_races(racy_counter_program(), _wo, tries=12, jobs=1,
                        retry_backoff=0.001, metrics=reg,
                        on_outcome=seen.append)
    retried = [o for o in seen if o.status == "retried"]
    assert len(retried) == 1
    assert retried[0].job.index == 3
    assert "InjectedCrash" in retried[0].error
    tries = reg.get("hunt_tries_total")
    by_status = {}
    for entry in tries.series():
        status = entry["labels"]["status"]
        by_status[status] = by_status.get(status, 0) + entry["value"]
    assert by_status.get("retried") == 1
    # settled outcomes still account for every planned job
    assert by_status.get("racy", 0) + by_status.get("clean", 0) == 12
    assert not result.failures


def test_progress_not_advanced_by_retried_attempts():
    faults.install(FaultPlan(crash={3: 2}))
    calls = []
    hunt_races(racy_counter_program(), _wo, tries=8, jobs=1,
               retry_backoff=0.001,
               progress=lambda done, total, racy: calls.append(done))
    # done advances once per settled job, never past the planned total
    assert calls == list(range(1, 9))


# ----------------------------------------------------------------------
# backoff determinism
# ----------------------------------------------------------------------

def test_retry_backoff_deterministic_and_exponential():
    job = plan_jobs(10, ["stubborn", "ring"])[5]
    first = _retry_job(job, 0.05)
    again = _retry_job(job, 0.05)
    assert first == again  # pure function of (job, attempt)
    assert first.attempt == 1
    second = _retry_job(first, 0.05)
    assert second.attempt == 2
    # exponential shape with bounded jitter: base * 2^(n-1) * [0.5, 1.5)
    assert 0.025 <= first.delay < 0.075
    assert 0.05 <= second.delay < 0.15
    # jitter differs between attempts (seeded by attempt number)
    assert first.delay * 2 != second.delay


def test_retry_preserves_job_identity():
    job = plan_jobs(4, ["stubborn"])[2]
    retry = _retry_job(job, 0.01)
    assert (retry.index, retry.seed, retry.policy_index,
            retry.policy_name) == (job.index, job.seed,
                                   job.policy_index, job.policy_name)


# ----------------------------------------------------------------------
# engine parameter validation
# ----------------------------------------------------------------------

def test_run_hunt_rejects_bad_recovery_params():
    program = racy_counter_program()
    policies = [("stubborn", StubbornPropagation)]
    with pytest.raises(ValueError, match="max_retries"):
        run_hunt(program, _wo, tries=2, policies=policies, max_retries=-1)
    with pytest.raises(ValueError, match="checkpoint_interval"):
        run_hunt(program, _wo, tries=2, policies=policies,
                 checkpoint_interval=0)
    with pytest.raises(ValueError, match="resume requires"):
        run_hunt(program, _wo, tries=2, policies=policies, resume=True)
    with pytest.raises(ValueError, match="job_timeout"):
        run_hunt(program, _wo, tries=2, policies=policies, job_timeout=0)
