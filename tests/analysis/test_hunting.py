"""Race-hunt tests."""

import pytest

from repro.analysis.hunting import default_policies, hunt_races
from repro.machine.models import make_model
from repro.machine.replay import replay_execution
from repro.programs.figure1 import figure1a_program
from repro.programs.kernels import locked_counter_program
from repro.programs.workqueue import buggy_workqueue_program


def _wo():
    return make_model("WO")


def test_finds_races_in_racy_program():
    result = hunt_races(figure1a_program(), _wo, tries=6)
    assert result.found
    assert result.racy_runs > 0
    assert result.first_report is not None
    assert not result.first_report.race_free


def test_clean_program_reports_nothing():
    result = hunt_races(locked_counter_program(2, 2), _wo, tries=6)
    assert not result.found
    assert result.clean_runs == 6
    assert "not a proof" in result.summary()


def test_recording_replays_the_racy_run():
    result = hunt_races(buggy_workqueue_program(), _wo, tries=9)
    assert result.found
    replayed = replay_execution(
        buggy_workqueue_program(), make_model("WO"), result.recording
    )
    from repro.core.detector import PostMortemDetector
    report = PostMortemDetector().analyze_execution(replayed)
    assert report.format() == result.first_report.format()


def test_stop_at_first():
    result = hunt_races(figure1a_program(), _wo, tries=30, stop_at_first=True)
    assert result.found
    assert result.tries < 30


def test_per_policy_accounting():
    result = hunt_races(figure1a_program(), _wo, tries=9)
    assert sum(total for _, total in result.per_policy.values()) == 9
    assert sum(racy for racy, _ in result.per_policy.values()) == \
           result.racy_runs


def test_custom_policies():
    from repro.machine.propagation import EagerPropagation
    result = hunt_races(
        figure1a_program(), _wo, tries=4,
        policies=[("eager", EagerPropagation)],
    )
    assert set(result.per_policy) == {"eager"}


def test_default_policies_shape():
    policies = default_policies(3)
    names = [name for name, _ in policies]
    assert "stubborn" in names and "ring" in names
    for _, factory in policies:
        factory()  # constructible


def test_validation():
    with pytest.raises(ValueError):
        hunt_races(figure1a_program(), _wo, tries=0)


def test_summary_text():
    result = hunt_races(figure1a_program(), _wo, tries=6)
    text = result.summary()
    assert "hunted 6 executions" in text
    assert "seed=" in text
