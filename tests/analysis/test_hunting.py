"""Race-hunt tests."""

import pytest

from repro.analysis.hunting import (
    HuntResult,
    default_policies,
    hunt_races,
    policies_by_name,
)
from repro.analysis.parallel import plan_jobs
from repro.machine.models import make_model
from repro.machine.replay import replay_execution
from repro.programs.figure1 import figure1a_program
from repro.programs.kernels import locked_counter_program
from repro.programs.workqueue import buggy_workqueue_program


def _wo():
    return make_model("WO")


def test_finds_races_in_racy_program():
    result = hunt_races(figure1a_program(), _wo, tries=6)
    assert result.found
    assert result.racy_runs > 0
    assert result.first_report is not None
    assert not result.first_report.race_free


def test_clean_program_reports_nothing():
    result = hunt_races(locked_counter_program(2, 2), _wo, tries=6)
    assert not result.found
    assert result.clean_runs == 6
    assert "not a proof" in result.summary()


def test_recording_replays_the_racy_run():
    result = hunt_races(buggy_workqueue_program(), _wo, tries=9)
    assert result.found
    replayed = replay_execution(
        buggy_workqueue_program(), make_model("WO"), result.recording
    )
    from repro.core.detector import PostMortemDetector
    report = PostMortemDetector().analyze_execution(replayed)
    assert report.format() == result.first_report.format()


def test_stop_at_first():
    result = hunt_races(figure1a_program(), _wo, tries=30, stop_at_first=True)
    assert result.found
    assert result.tries < 30


def test_per_policy_accounting():
    result = hunt_races(figure1a_program(), _wo, tries=9)
    assert sum(total for _, total in result.per_policy.values()) == 9
    assert sum(racy for racy, _ in result.per_policy.values()) == \
           result.racy_runs


def test_custom_policies():
    from repro.machine.propagation import EagerPropagation
    result = hunt_races(
        figure1a_program(), _wo, tries=4,
        policies=[("eager", EagerPropagation)],
    )
    assert set(result.per_policy) == {"eager"}


def test_default_policies_shape():
    policies = default_policies(3)
    names = [name for name, _ in policies]
    assert "stubborn" in names and "ring" in names
    for _, factory in policies:
        factory()  # constructible


def test_validation():
    with pytest.raises(ValueError):
        hunt_races(figure1a_program(), _wo, tries=0)
    with pytest.raises(ValueError):
        hunt_races(figure1a_program(), _wo, tries=4, jobs=0)


def test_empty_policies_rejected():
    """Regression: an explicit empty policy list used to slip past the
    ``is not None`` check and die with ZeroDivisionError."""
    with pytest.raises(ValueError, match="policies must not be empty"):
        hunt_races(figure1a_program(), _wo, tries=4, policies=[])


def test_summary_text():
    result = hunt_races(figure1a_program(), _wo, tries=6)
    text = result.summary()
    assert "hunted 6 executions" in text
    assert "seed=" in text


# ----------------------------------------------------------------------
# seed/policy decoupling (regression for the round-robin seed coupling)
# ----------------------------------------------------------------------

def test_every_policy_sweeps_identical_seed_set():
    """Regression: ``seed = attempt`` with policy round-robin gave each
    policy a disjoint seed stride (stubborn only ever saw 0, 3, 6, ...).
    Seed-major enumeration gives every policy the same seed set."""
    plan = plan_jobs(12, ["stubborn", "random-0.2", "ring"])
    seeds_of = {
        name: sorted(j.seed for j in plan if j.policy_name == name)
        for name in ("stubborn", "random-0.2", "ring")
    }
    assert seeds_of["stubborn"] == seeds_of["random-0.2"] \
        == seeds_of["ring"] == [0, 1, 2, 3]


def test_policy_count_change_keeps_seed_sets():
    """Adding a policy must not silently change which seeds the
    existing policies observe (per seeds-per-policy)."""
    two = plan_jobs(8, ["a", "b"])
    three = plan_jobs(12, ["a", "b", "c"])
    seeds = lambda plan, name: sorted(
        j.seed for j in plan if j.policy_name == name
    )
    assert seeds(two, "a") == seeds(three, "a") == [0, 1, 2, 3]
    assert seeds(two, "b") == seeds(three, "b") == [0, 1, 2, 3]


def test_hunt_per_seed_covers_every_policy():
    result = hunt_races(figure1a_program(), _wo, tries=9)
    # 3 policies, 9 tries -> seeds 0..2, each run under all 3 policies
    assert sorted(result.per_seed) == [0, 1, 2]
    assert all(total == 3 for _, total in result.per_seed.values())
    assert all(total == 3 for _, total in result.per_policy.values())


# ----------------------------------------------------------------------
# recording verification (satellite: don't advertise a broken replay)
# ----------------------------------------------------------------------

def test_recording_verified_on_find():
    result = hunt_races(buggy_workqueue_program(), _wo, tries=9)
    assert result.found
    assert result.recording_verified is True
    assert "recording captured for replay" in result.summary()


def test_summary_warns_when_verification_fails():
    result = HuntResult(
        program=figure1a_program(), model_name="WO", tries=1,
        racy_runs=1, clean_runs=0, seed=0, policy="stubborn",
        per_policy={"stubborn": (1, 1)}, recording_verified=False,
    )
    text = result.summary()
    assert "WARNING" in text
    assert "failed replay verification" in text
    assert "recording captured for replay" not in text


def test_policies_by_name():
    pairs = policies_by_name(["eager", "stubborn"], 3)
    assert [name for name, _ in pairs] == ["eager", "stubborn"]
    for _, factory in pairs:
        factory()
    with pytest.raises(ValueError, match="unknown propagation policy"):
        policies_by_name(["nope"], 3)


def test_stats_round_trip_json_serializable():
    import json
    result = hunt_races(figure1a_program(), _wo, tries=6)
    payload = result.to_json()
    assert json.loads(json.dumps(payload)) == payload
    assert payload["tries"] == 6
    assert payload["jobs"] == 1


# ----------------------------------------------------------------------
# detector selection (one hunt = one analysis backend)
# ----------------------------------------------------------------------

def test_hunt_detector_rides_every_surface():
    from repro.obs import metrics
    from repro.programs.kernels import racy_counter_program

    reg = metrics.MetricsRegistry()
    result = hunt_races(
        racy_counter_program(), _wo, tries=6, metrics=reg, detector="shb",
    )
    assert result.detector == "shb"
    assert result.found
    # the first report comes from the selected backend
    assert result.first_report.to_json()["kind"] == "shb"
    # to_json carries detector + certified count; stats() stays
    # byte-compatible with pre-detector hunts (legacy resume relies
    # on it)
    payload = result.to_json()
    assert payload["detector"] == "shb"
    assert payload["certified_races"] == result.certified_races
    assert "detector" not in result.stats()
    assert "certified_races" not in result.stats()
    # every metric sample is labeled with the hunt's detector
    series = reg.get("hunt_tries_total").series()
    assert series
    assert all(e["labels"]["detector"] == "shb" for e in series)


def test_shb_hunt_certifies_more_than_baseline():
    from repro.programs.kernels import racy_counter_program

    base = hunt_races(racy_counter_program(), _wo, tries=8)
    shb = hunt_races(racy_counter_program(), _wo, tries=8, detector="shb")
    # same executions, same racy verdicts — only the certificates grow
    assert shb.racy_runs == base.racy_runs
    assert shb.certified_races > base.certified_races


def test_wcp_hunt_catches_the_shadowed_race():
    from repro.programs.kernels import lock_shadow_program

    base = hunt_races(lock_shadow_program(), _wo, tries=12)
    wcp = hunt_races(lock_shadow_program(), _wo, tries=12, detector="wcp")
    assert wcp.racy_runs >= base.racy_runs
    assert wcp.racy_runs == 12  # WCP flags every schedule of this kernel


def test_hunt_rejects_unknown_and_streaming_detectors():
    from repro.programs.kernels import racy_counter_program

    for bad in ("onthefly", "psychic"):
        with pytest.raises(ValueError, match="unknown hunt detector"):
            hunt_races(racy_counter_program(), _wo, tries=2, detector=bad)


def test_hunt_detector_is_checkpoint_identity(tmp_path):
    from repro.analysis.checkpoint import CheckpointMismatch
    from repro.programs.kernels import racy_counter_program

    path = tmp_path / "hunt.ckpt"
    hunt_races(
        racy_counter_program(), _wo, tries=4, checkpoint=path,
        detector="wcp",
    )
    with pytest.raises(CheckpointMismatch, match="detector"):
        hunt_races(
            racy_counter_program(), _wo, tries=4, checkpoint=path,
            resume=True, detector="shb",
        )
    resumed = hunt_races(
        racy_counter_program(), _wo, tries=4, checkpoint=path,
        resume=True, detector="wcp",
    )
    assert resumed.resumed_jobs == 4
    assert resumed.detector == "wcp"


@pytest.mark.parametrize("jobs", [1, 2])
def test_detector_hunts_merge_identically_across_workers(jobs):
    from repro.programs.kernels import racy_counter_program

    result = hunt_races(
        racy_counter_program(), _wo, tries=8, jobs=jobs, detector="shb",
    )
    serial = hunt_races(
        racy_counter_program(), _wo, tries=8, jobs=1, detector="shb",
    )
    assert result.stats() == serial.stats()
    assert result.certified_races == serial.certified_races
