"""Edge cases of the SIGALRM job time limit: degenerate budgets,
timer hygiene after exit, C-level sleeps, and timeouts escaping
through non-execution code paths like pickling."""

import signal
import threading
import time

import pytest

from repro import faults
from repro.analysis.hunting import hunt_races
from repro.analysis.parallel import JobTimeout, _time_limit, run_hunt
from repro.faults import FaultPlan
from repro.machine.models import make_model
from repro.machine.propagation import StubbornPropagation
from repro.programs.kernels import racy_counter_program


def _wo():
    return make_model("WO")


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


# ----------------------------------------------------------------------
# degenerate budgets
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seconds", [0, 0.0, -1, -0.5])
def test_nonpositive_budget_is_rejected(seconds):
    with pytest.raises(ValueError, match="time limit must be positive"):
        with _time_limit(seconds):
            pass


def test_none_means_no_limit():
    with _time_limit(None):
        time.sleep(0.01)


@pytest.mark.parametrize("jobs", [1, 2])
def test_run_hunt_rejects_zero_timeout_before_spawning(jobs):
    with pytest.raises(ValueError, match="job_timeout"):
        run_hunt(racy_counter_program(), _wo, tries=2,
                 policies=[("stubborn", StubbornPropagation)],
                 jobs=jobs, job_timeout=0)


# ----------------------------------------------------------------------
# timer hygiene
# ----------------------------------------------------------------------

def test_no_stray_alarm_after_clean_exit():
    with _time_limit(0.05):
        pass
    # the itimer must be disarmed: sleeping past the budget after the
    # context exits must not raise
    time.sleep(0.08)
    assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)


def test_previous_handler_restored_after_timeout():
    before = signal.getsignal(signal.SIGALRM)
    with pytest.raises(JobTimeout):
        with _time_limit(0.01):
            time.sleep(5)
    assert signal.getsignal(signal.SIGALRM) is before
    assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)


def test_timer_disarmed_even_when_body_raises():
    with pytest.raises(RuntimeError, match="boom"):
        with _time_limit(0.05):
            raise RuntimeError("boom")
    time.sleep(0.08)  # past the budget: no stray JobTimeout
    assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)


def test_noop_off_main_thread():
    errors = []

    def body():
        try:
            with _time_limit(0.01):
                time.sleep(0.05)  # would time out on the main thread
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    worker = threading.Thread(target=body)
    worker.start()
    worker.join()
    assert errors == []


# ----------------------------------------------------------------------
# what the timeout interrupts
# ----------------------------------------------------------------------

def test_timeout_interrupts_c_level_sleep():
    """SIGALRM must break a worker stuck inside a C call that releases
    the GIL (time.sleep stands in for a wedged native extension)."""
    start = time.monotonic()
    with pytest.raises(JobTimeout):
        with _time_limit(0.05):
            time.sleep(10)
    assert time.monotonic() - start < 2.0


def test_timeout_interrupts_pure_python_loop():
    with pytest.raises(JobTimeout):
        with _time_limit(0.05):
            while True:
                pass


def test_timeout_fires_during_pickling_of_large_object():
    """A pathological recording that pickles forever must still be
    bounded by the job budget, not just the execution itself."""
    import pickle

    class _SlowPickle:
        def __reduce__(self):
            time.sleep(10)
            return (dict, ())

    with pytest.raises(JobTimeout):
        with _time_limit(0.05):
            pickle.dumps(_SlowPickle())


# ----------------------------------------------------------------------
# through the engine: a hung job becomes a bounded failure
# ----------------------------------------------------------------------

@pytest.mark.parametrize("jobs", [1, 2])
def test_hung_job_times_out_and_hunt_completes(jobs):
    faults.install(FaultPlan(hang={1: 99}, hang_seconds=30.0))
    start = time.monotonic()
    result = hunt_races(racy_counter_program(), _wo, tries=4, jobs=jobs,
                        job_timeout=0.2, max_retries=0)
    assert time.monotonic() - start < 10.0
    assert result.tries == 4
    assert len(result.failures) == 1
    assert "JobTimeout" in result.failures[0].error


def test_hang_then_timeout_is_retried_like_any_error():
    # a hang that clears after the first attempt recovers via retry
    faults.install(FaultPlan(hang={1: 1}, hang_seconds=30.0))
    result = hunt_races(racy_counter_program(), _wo, tries=4, jobs=1,
                        job_timeout=0.2, retry_backoff=0.001)
    assert not result.failures
    assert result.retried_runs == 1
