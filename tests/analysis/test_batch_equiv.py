"""Differential suite for the batched pool protocol: a batched
parallel hunt must be observationally identical to the serial loop.

The engine's core guarantee is that ``stats()``/``summary()`` are pure
functions of the hunt spec — worker count, dispatch batching, wire
compaction, retries, fault injection, and checkpoint/resume boundaries
must all be invisible.  This suite drives the serial path and the
batched pool across the product of those dimensions and asserts the
serialized results are byte-identical, plus unit coverage for the
batching primitives (:func:`plan_batches`, :class:`BatchOutcome`,
:class:`~repro.analysis.sharedcache.SharedTraceCache`) and the
defensive pool shutdown.
"""

import json
import multiprocessing
import threading

import pytest

from repro import faults
from repro.analysis import sharedcache
from repro.analysis.hunting import hunt_races
from repro.analysis.parallel import (
    BatchOutcome,
    HuntJob,
    JobOutcome,
    _HuntState,
    _PoolExecutor,
    plan_batches,
    plan_jobs,
)
from repro.faults import ENV_VAR, FaultPlan
from repro.machine.models import make_model
from repro.machine.replay import ExecutionRecording
from repro.obs.metrics import MetricsRegistry
from repro.programs.kernels import locked_counter_program, racy_counter_program
from repro.programs.workqueue import buggy_workqueue_program


def _wo():
    return make_model("WO")


def _stats_bytes(result):
    """The byte-level identity the acceptance criterion talks about."""
    return json.dumps(result.stats(), sort_keys=True).encode("utf-8")


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    faults.clear()
    yield
    faults.clear()


# ----------------------------------------------------------------------
# the differential grid: serial vs batched pool
# ----------------------------------------------------------------------

@pytest.mark.parametrize("stop_at_first", [False, True])
@pytest.mark.parametrize("batch_size", [1, 3, None])
def test_batched_parallel_matches_serial(stop_at_first, batch_size):
    serial = hunt_races(
        buggy_workqueue_program(), _wo, tries=18, jobs=1,
        stop_at_first=stop_at_first,
    )
    batched = hunt_races(
        buggy_workqueue_program(), _wo, tries=18, jobs=4,
        stop_at_first=stop_at_first, batch_size=batch_size,
    )
    assert _stats_bytes(batched) == _stats_bytes(serial)
    assert batched.summary() == serial.summary()


def test_batched_parallel_matches_serial_on_clean_program():
    serial = hunt_races(locked_counter_program(2, 2), _wo, tries=8, jobs=1)
    batched = hunt_races(
        locked_counter_program(2, 2), _wo, tries=8, jobs=3, batch_size=2,
    )
    assert _stats_bytes(batched) == _stats_bytes(serial)
    assert not batched.found


@pytest.mark.parametrize("batch_size", [1, 4])
def test_batched_parallel_matches_serial_under_faults(batch_size):
    """Injected crashes drive the retry layer (one deterministic
    failure, one transient recovery) and the result must still be
    byte-identical to the serial run of the same plan."""
    results = []
    for jobs in (1, 3):
        faults.install(FaultPlan(crash={2: 99, 5: 1}))
        results.append(hunt_races(
            racy_counter_program(), _wo, tries=9, jobs=jobs,
            batch_size=batch_size, retry_backoff=0.001,
        ))
        faults.clear()
    serial, batched = results
    assert _stats_bytes(batched) == _stats_bytes(serial)
    assert batched.summary() == serial.summary()
    assert batched.retried_runs == serial.retried_runs == 2
    assert [f.kind for f in batched.failures] == ["deterministic"]


def test_batched_resume_matches_uninterrupted_serial(tmp_path):
    """Interrupt a batched hunt mid-batch (cancel after a few settles),
    then resume with a different batch size: the merged result must be
    byte-identical to an uninterrupted serial run."""
    ckpt = tmp_path / "hunt.ckpt"
    serial = hunt_races(buggy_workqueue_program(), _wo, tries=16, jobs=1)

    cancel = threading.Event()
    seen = []

    def trip(outcome):
        seen.append(outcome)
        if len(seen) == 5:  # mid-batch for batch_size=4
            cancel.set()

    partial = hunt_races(
        buggy_workqueue_program(), _wo, tries=16, jobs=2, batch_size=4,
        checkpoint=str(ckpt), checkpoint_interval=1, cancel=cancel,
        on_outcome=trip,
    )
    assert partial.interrupted
    # On a loaded box every batch may finish before the cancel reaches
    # the workers, so the settled count is <= 16, not necessarily <.
    assert partial.tries <= 16

    resumed = hunt_races(
        buggy_workqueue_program(), _wo, tries=16, jobs=3, batch_size=2,
        checkpoint=str(ckpt), resume=True,
    )
    assert resumed.resumed_jobs == partial.tries
    assert _stats_bytes(resumed) == _stats_bytes(serial)
    assert resumed.summary() == serial.summary()


def test_batched_resume_with_stop_at_first(tmp_path):
    """Resume seeds the shared racy bounds from the checkpoint: with
    stop_at_first the restored first racy index prunes the re-plan and
    the merge still matches serial byte-for-byte."""
    ckpt = tmp_path / "hunt.ckpt"
    serial = hunt_races(
        buggy_workqueue_program(), _wo, tries=20, jobs=1,
        stop_at_first=True,
    )
    cancel = threading.Event()
    partial = hunt_races(
        buggy_workqueue_program(), _wo, tries=20, jobs=2, batch_size=3,
        stop_at_first=True, checkpoint=str(ckpt), checkpoint_interval=1,
        cancel=cancel, on_outcome=lambda o: cancel.set(),
    )
    assert partial.interrupted
    resumed = hunt_races(
        buggy_workqueue_program(), _wo, tries=20, jobs=4,
        stop_at_first=True, checkpoint=str(ckpt), resume=True,
    )
    assert _stats_bytes(resumed) == _stats_bytes(serial)
    assert resumed.recording_verified


def test_metric_totals_identical_serial_vs_batched():
    """The fold is split across the batch wire (duration histogram and
    cache hits fold worker-side); the registry a caller sees must not
    be able to tell."""
    registries = []
    for jobs, batch_size in ((1, None), (4, 3)):
        reg = MetricsRegistry()
        hunt_races(buggy_workqueue_program(), _wo, tries=12, jobs=jobs,
                   batch_size=batch_size, metrics=reg)
        registries.append(reg)
    serial, batched = registries
    tries_s = serial.get("hunt_tries_total")
    tries_b = batched.get("hunt_tries_total")
    assert tries_b.total() == tries_s.total() == 12
    assert sorted(map(str, tries_b.series())) == sorted(
        map(str, tries_s.series())
    )
    dur_s = serial.get("hunt_job_duration_seconds")
    dur_b = batched.get("hunt_job_duration_seconds")
    assert dur_b.count() == dur_s.count() == 12
    hits_s = serial.get("hunt_trace_cache_hits_total")
    hits_b = batched.get("hunt_trace_cache_hits_total")
    # hit *counts* may differ by the analyses that raced (each worker
    # pays at most one extra per fingerprint), never by more
    assert hits_b is not None and hits_s is not None
    assert hits_b.total() <= hits_s.total()
    assert hits_s.total() - hits_b.total() <= 4
    assert batched.get("hunt_done").value() == 12


def test_event_stream_covers_every_job_under_batching():
    """Unfolded batches must feed the observer one outcome per job,
    exactly as the unbatched protocol did."""
    seen = []
    hunt_races(buggy_workqueue_program(), _wo, tries=10, jobs=3,
               batch_size=2, on_outcome=lambda o: seen.append(o))
    assert sorted(o.job.index for o in seen) == list(range(10))
    assert all(o.duration >= 0 for o in seen)


# ----------------------------------------------------------------------
# batching primitives
# ----------------------------------------------------------------------

def test_plan_batches_covers_plan_contiguously():
    jobs = plan_jobs(17, ["a", "b"])
    batches = plan_batches(jobs, workers=3, batch_size=4)
    assert [len(b) for b in batches] == [4, 4, 4, 4, 1]
    flat = [j.index for batch in batches for j in batch]
    assert flat == list(range(17))  # order-preserving, no gaps


def test_plan_batches_auto_size_targets_batches_per_worker():
    jobs = plan_jobs(64, ["a"])
    batches = plan_batches(jobs, workers=4)
    # 64 jobs / (4 workers * 2) = 8 per batch
    assert [len(b) for b in batches] == [8] * 8
    # tiny plans still produce at least one job per batch
    assert [len(b) for b in plan_batches(plan_jobs(3, ["a"]), workers=8)] \
        == [1, 1, 1]


def test_plan_batches_rejects_nonpositive_size():
    with pytest.raises(ValueError):
        plan_batches(plan_jobs(4, ["a"]), workers=2, batch_size=0)


def test_batch_outcome_pack_unfold_roundtrip():
    jobs = plan_jobs(4, ["a", "b"])
    recording = ExecutionRecording(
        model_name="WO", schedule=[0, 1], deliveries=[[(0, 1)], []],
    )
    outcomes = [
        JobOutcome(job=jobs[0], status="clean", operations=5,
                   duration=0.25, fingerprint="fp0"),
        JobOutcome(job=jobs[1], status="racy", operations=9,
                   recording=recording, report_digest="digest-1",
                   race_count=2, certified_races=1, cache_hit=True,
                   duration=0.5, fingerprint="fp1"),
        JobOutcome(job=jobs[2], status="error", error="Boom: x",
                   traceback="tb...", completed=True),
        JobOutcome(job=jobs[3], status="skipped"),
    ]
    packed = BatchOutcome.pack(outcomes)
    assert set(packed.recordings) == {1}
    assert set(packed.digests) == {1}
    assert set(packed.errors) == {2}
    unfolded = packed.unfold({j.index: j for j in jobs})
    for original, rebuilt in zip(outcomes, unfolded):
        assert rebuilt.job is original.job
        for field in ("status", "completed", "operations", "error",
                      "traceback", "report_digest", "cache_hit",
                      "duration", "fingerprint", "race_count",
                      "certified_races"):
            assert getattr(rebuilt, field) == getattr(original, field)
    assert unfolded[1].recording is recording
    assert unfolded[0].recording is None


# ----------------------------------------------------------------------
# the shared trace cache
# ----------------------------------------------------------------------

def _cache_pair(tmp_path):
    path = str(tmp_path / "cache.jsonl")
    open(path, "w").close()
    lock = multiprocessing.get_context("fork").Lock()
    return (
        sharedcache.SharedTraceCache(path, lock),
        sharedcache.SharedTraceCache(path, lock),
    )


def test_shared_cache_put_visible_to_other_instance(tmp_path):
    writer, reader = _cache_pair(tmp_path)
    value = (True, "digest", 3, 2)
    writer.put("fp-a", value)
    assert reader.local == {}  # nothing folded yet
    assert reader.get("fp-a") == value  # refreshed from the file
    assert reader.get("fp-missing") is None


def test_shared_cache_refresh_is_incremental(tmp_path):
    writer, reader = _cache_pair(tmp_path)
    writer.put("fp-a", (False, "", 0, 0))
    assert reader.get("fp-a") == (False, "", 0, 0)
    offset = reader._offset
    writer.put("fp-b", (True, "d", 1, 1))
    assert reader.get("fp-b") == (True, "d", 1, 1)
    assert reader._offset > offset  # consumed only the tail


def test_shared_cache_ignores_torn_trailing_line(tmp_path):
    writer, reader = _cache_pair(tmp_path)
    writer.put("fp-a", (True, "d", 1, 0))
    with open(writer.path, "ab") as fh:
        fh.write(b'["fp-torn", true, "par')  # append in progress
    assert reader.get("fp-a") == (True, "d", 1, 0)
    assert reader.get("fp-torn") is None
    with open(writer.path, "ab") as fh:
        fh.write(b'tial", 1, 0]\n')  # append completes
    assert reader.get("fp-torn") == (True, "partial", 1, 0)


def test_shared_cache_survives_missing_file(tmp_path):
    lock = multiprocessing.get_context("fork").Lock()
    cache = sharedcache.SharedTraceCache(
        str(tmp_path / "never-created.jsonl"), lock
    )
    assert cache.get("fp") is None  # read path degrades
    cache.put("fp", (True, "d", 1, 1))  # write path degrades to local
    assert cache.get("fp") == (True, "d", 1, 1)


def test_shared_cache_bounds_local_dict(tmp_path):
    writer, _ = _cache_pair(tmp_path)
    writer.max_entries = 4
    for i in range(9):
        writer.put(f"fp-{i}", (False, "", 0, 0))
    assert len(writer.local) <= 4
    # evicted entries still come back from the shared file
    fresh = sharedcache.SharedTraceCache(writer.path, writer.lock)
    assert fresh.get("fp-0") == (False, "", 0, 0)


def test_cache_file_lifecycle(tmp_path, monkeypatch):
    import os
    import tempfile

    monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
    path = sharedcache.create_cache_file()
    assert os.path.exists(path)
    sharedcache.remove_cache_file(path)
    assert not os.path.exists(path)
    sharedcache.remove_cache_file(path)  # idempotent


# ----------------------------------------------------------------------
# defensive pool shutdown (a stdlib reshape must degrade, not raise)
# ----------------------------------------------------------------------

def _pool_state():
    return _HuntState(
        racy_counter_program(), _wo,
        [("stubborn", lambda: None)], max_steps=100, job_timeout=None,
    )


def test_pool_close_degrades_without_private_worker_list():
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")
    executor = _PoolExecutor(_pool_state(), workers=2, stop_at_first=False)
    # simulate a future stdlib that renames Pool._pool
    executor.pool._pool = None
    executor.close()  # must fall back to terminate(), not raise
    assert executor.cache_path is None  # shared cache file cleaned up


def test_pool_close_is_clean_on_untouched_pool():
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")
    executor = _PoolExecutor(_pool_state(), workers=2, stop_at_first=True)
    executor.close()
    assert executor.cache_path is None
