"""Hunt-id correlation and the coverage/failure metric families: the
same id must appear in HuntResult.to_json, the checkpoint payload, and
the resumed run; coverage gauges and the hunt_coverage timeseries must
grow as distinct traces and provenance partitions settle; failures
must classify into hunt_failures_total{kind}."""

import json
import threading

import pytest

from repro import faults
from repro.analysis.checkpoint import (
    load_checkpoint,
    make_hunt_id,
    peek_hunt_id,
)
from repro.analysis.hunting import hunt_races
from repro.faults import FaultPlan
from repro.machine.models import make_model
from repro.obs.metrics import MetricsRegistry
from repro.programs.kernels import racy_counter_program
from repro.programs.workqueue import buggy_workqueue_program


def _wo():
    return make_model("WO")


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


# ----------------------------------------------------------------------
# id minting and peeking
# ----------------------------------------------------------------------

def test_make_hunt_id_shape_and_nonce():
    spec = {"workload": "wq", "tries": 8}
    a = make_hunt_id(spec)
    b = make_hunt_id(spec)
    assert len(a) == 16 and int(a, 16) >= 0  # 8-byte hex digest
    assert a != b  # fresh nonce per mint
    assert make_hunt_id(spec, nonce="n") == make_hunt_id(spec, nonce="n")
    assert make_hunt_id(spec, nonce="n") != make_hunt_id(spec, nonce="m")


def test_peek_hunt_id_missing_and_idless(tmp_path):
    assert peek_hunt_id(tmp_path / "nope.json") is None
    idless = tmp_path / "idless.json"
    idless.write_text(json.dumps({"spec": {}}), encoding="utf-8")
    assert peek_hunt_id(idless) is None
    garbage = tmp_path / "garbage.json"
    garbage.write_text("{not json", encoding="utf-8")
    assert peek_hunt_id(garbage) is None


# ----------------------------------------------------------------------
# one id everywhere
# ----------------------------------------------------------------------

def test_hunt_id_flows_to_result_and_checkpoint(tmp_path):
    checkpoint = tmp_path / "hunt.ckpt"
    result = hunt_races(
        racy_counter_program(), _wo, tries=6,
        checkpoint=str(checkpoint), hunt_id="aabbccdd00112233",
    )
    assert result.hunt_id == "aabbccdd00112233"
    assert result.to_json()["hunt_id"] == "aabbccdd00112233"
    assert peek_hunt_id(checkpoint) == "aabbccdd00112233"
    assert load_checkpoint(checkpoint).hunt_id == "aabbccdd00112233"


def test_hunt_mints_an_id_when_none_is_passed():
    result = hunt_races(racy_counter_program(), _wo, tries=4)
    assert isinstance(result.hunt_id, str) and len(result.hunt_id) == 16


def test_resume_keeps_the_checkpoint_id(tmp_path):
    checkpoint = tmp_path / "hunt.ckpt"
    # interrupt partway so the resume actually restores outcomes
    cancel = threading.Event()
    seen = []

    def stop_after_three(outcome):
        seen.append(outcome)
        if len(seen) == 3:
            cancel.set()

    first = hunt_races(
        racy_counter_program(), _wo, tries=12,
        checkpoint=str(checkpoint), checkpoint_interval=1,
        cancel=cancel, on_outcome=stop_after_three,
        hunt_id="0123456789abcdef",
    )
    assert first.interrupted
    resumed = hunt_races(
        racy_counter_program(), _wo, tries=12,
        checkpoint=str(checkpoint), resume=True,
        hunt_id="ffffffffffffffff",  # the checkpoint's id must win
    )
    assert resumed.hunt_id == "0123456789abcdef"
    assert resumed.resumed_jobs > 0
    assert peek_hunt_id(checkpoint) == "0123456789abcdef"


def test_hunt_info_metric_carries_the_id():
    registry = MetricsRegistry()
    result = hunt_races(racy_counter_program(), _wo, tries=4,
                        metrics=registry, hunt_id="1122334455667788")
    info = registry.get("hunt_info")
    (entry,) = info.series()
    assert entry["labels"]["hunt_id"] == "1122334455667788"
    assert entry["labels"]["detector"] == result.detector
    assert entry["value"] == 1


# ----------------------------------------------------------------------
# coverage family
# ----------------------------------------------------------------------

def test_coverage_gauges_and_timeseries_grow():
    registry = MetricsRegistry()
    hunt_races(buggy_workqueue_program(), _wo, tries=40, metrics=registry)
    fingerprints = registry.get("hunt_coverage_fingerprints").value()
    partitions = registry.get(
        "hunt_coverage_provenance_partitions").value()
    assert fingerprints and fingerprints > 0
    assert partitions and partitions > 0
    series = registry.get("hunt_coverage")
    # one sample per growth event, per kind
    assert len(series.points(kind="fingerprints")) == fingerprints
    assert len(series.points(kind="partitions")) == partitions
    # distinct-set semantics: cache hits repeat fingerprints and never
    # inflate the gauge past the number of distinct traces
    cache_hits = registry.get("hunt_trace_cache_hits_total").total()
    done = registry.get("hunt_done").value()
    assert fingerprints <= done - cache_hits


def test_coverage_counts_restored_outcomes_once(tmp_path):
    checkpoint = tmp_path / "hunt.ckpt"
    cancel = threading.Event()
    seen = []

    def stop_after_five(outcome):
        seen.append(outcome)
        if len(seen) == 5:
            cancel.set()

    hunt_races(buggy_workqueue_program(), _wo, tries=30,
               checkpoint=str(checkpoint), checkpoint_interval=1,
               cancel=cancel, on_outcome=stop_after_five)
    registry = MetricsRegistry()
    full = hunt_races(buggy_workqueue_program(), _wo, tries=30,
                      checkpoint=str(checkpoint), resume=True,
                      metrics=registry)
    uninterrupted = MetricsRegistry()
    reference = hunt_races(buggy_workqueue_program(), _wo, tries=30,
                           metrics=uninterrupted)
    assert full.stats() == reference.stats()
    assert registry.get("hunt_coverage_fingerprints").value() == \
        uninterrupted.get("hunt_coverage_fingerprints").value()
    assert registry.get("hunt_coverage_provenance_partitions").value() == \
        uninterrupted.get("hunt_coverage_provenance_partitions").value()


def test_partition_keys_survive_the_checkpoint(tmp_path):
    checkpoint = tmp_path / "hunt.ckpt"
    registry = MetricsRegistry()
    hunt_races(buggy_workqueue_program(), _wo, tries=10,
               checkpoint=str(checkpoint), metrics=registry)
    loaded = load_checkpoint(checkpoint)
    keys = set()
    for outcome in loaded.outcomes:
        keys.update(outcome.partition_keys)
    assert len(keys) == registry.get(
        "hunt_coverage_provenance_partitions").value()


def test_no_partition_keys_without_metrics():
    seen = []
    hunt_races(buggy_workqueue_program(), _wo, tries=6,
               on_outcome=seen.append)
    # the disabled-metrics hot path must not pay for coverage keys
    assert all(outcome.partition_keys == () for outcome in seen)


# ----------------------------------------------------------------------
# failure classification metric
# ----------------------------------------------------------------------

def test_failures_counter_classifies_kinds():
    faults.install(FaultPlan(crash={2: 99}))
    registry = MetricsRegistry()
    result = hunt_races(racy_counter_program(), _wo, tries=6,
                        max_retries=5, retry_backoff=0.001,
                        metrics=registry)
    assert len(result.failures) == 1
    counter = registry.get("hunt_failures_total")
    assert counter.value(kind="deterministic") == 1
    assert counter.total() == 1


def test_failures_counter_unretried():
    faults.install(FaultPlan(crash={2: 99}))
    registry = MetricsRegistry()
    hunt_races(racy_counter_program(), _wo, tries=6,
               max_retries=0, metrics=registry)
    assert registry.get(
        "hunt_failures_total").value(kind="unretried") == 1
