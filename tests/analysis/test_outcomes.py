"""Weak-execution outcome enumeration tests (the litmus table)."""

import pytest

from repro.analysis.outcomes import OutcomeLimit, enumerate_outcomes
from repro.machine.models import make_model
from repro.machine.program import ProgramBuilder
from repro.programs.litmus import store_buffering_program
from repro.programs.figure1 import figure1a_program, figure1b_program


class TestStoreBuffering:
    def test_sc_forbids_both_enter(self):
        out = enumerate_outcomes(
            store_buffering_program(), make_model("SC"),
            interesting=["critical[0]", "critical[1]"],
        )
        assert out.values_of("critical[0]", "critical[1]") == {
            (0, 0), (0, 1), (1, 0)
        }

    @pytest.mark.parametrize("model", ["WO", "RCsc", "DRF0", "DRF1"])
    def test_weak_admits_both_enter(self, model):
        out = enumerate_outcomes(
            store_buffering_program(), make_model(model),
            interesting=["critical[0]", "critical[1]"],
        )
        assert out.values_of("critical[0]", "critical[1]") == {
            (0, 0), (0, 1), (1, 0), (1, 1)
        }

    def test_weak_explores_more_states(self):
        sc = enumerate_outcomes(store_buffering_program(), make_model("SC"))
        wo = enumerate_outcomes(store_buffering_program(), make_model("WO"))
        assert wo.states_visited > sc.states_visited


class TestMessagePassing:
    """Figure 1a is the message-passing shape: flag/data with data ops."""

    def test_sc_forbids_flag_without_data(self):
        out = enumerate_outcomes(figure1a_program(), make_model("SC"))
        # project onto what P1 read: reconstruct via register effects is
        # not possible from final memory (reads leave no trace), so this
        # test only checks the final-memory outcome is unique under SC.
        assert len(out) == 1

    def test_outcome_is_final_memory(self):
        out = enumerate_outcomes(figure1a_program(), make_model("SC"))
        assert out.values_of("x", "y") == {(1, 1)}


class TestDRFProgramsModelIndependent:
    def test_figure1b_same_outcomes_on_all_models(self):
        """The semantic content of the SC-for-DRF guarantee: a DRF
        program's outcome set does not depend on the model."""
        reference = None
        for model in ("SC", "WO", "RCsc", "DRF0", "DRF1"):
            out = enumerate_outcomes(figure1b_program(), make_model(model))
            values = out.values_of("x", "y", "s")
            if reference is None:
                reference = values
            assert values == reference, model

    def test_racy_program_outcomes_model_dependent(self):
        sc = enumerate_outcomes(
            store_buffering_program(), make_model("SC")
        ).outcomes
        wo = enumerate_outcomes(
            store_buffering_program(), make_model("WO")
        ).outcomes
        assert sc < wo  # strict superset of behaviours on weak hardware


class TestMechanics:
    def test_interesting_projection(self):
        b = ProgramBuilder()
        x = b.var("x")
        b.var("noise")
        with b.thread() as t:
            t.write(x, 1)
            t.write("noise", 7)
        out = enumerate_outcomes(b.build(), make_model("SC"),
                                 interesting=["x"])
        assert out.values_of("x") == {(1,)}
        assert len(out) == 1

    def test_array_element_projection(self):
        out = enumerate_outcomes(
            store_buffering_program(), make_model("SC"),
            interesting=["critical[0]"],
        )
        assert out.values_of("critical[0]") <= {(0,), (1,)}

    def test_state_limit(self):
        with pytest.raises(OutcomeLimit):
            enumerate_outcomes(
                store_buffering_program(), make_model("WO"), max_states=10
            )

    def test_deadlock_paths_counted(self):
        b = ProgramBuilder()
        s = b.var("s", initial=1)
        with b.thread() as t:
            t.lock(s)  # never released: all paths deadlock
        out = enumerate_outcomes(b.build(), make_model("SC"))
        assert out.deadlocked_paths >= 1
        assert len(out) == 0

    def test_single_thread_deterministic(self):
        b = ProgramBuilder()
        x = b.var("x")
        with b.thread() as t:
            t.write(x, 1)
            t.write(x, 2)
        out = enumerate_outcomes(b.build(), make_model("WO"))
        assert out.values_of("x") == {(2,)}


class TestCrossValidation:
    """The enumerator and the simulator must agree: any simulated
    execution's final memory is one of the enumerated outcomes."""

    @pytest.mark.parametrize("model", ["SC", "WO", "RCsc"])
    def test_simulated_outcomes_enumerated(self, model):
        from repro.machine.propagation import (
            EagerPropagation,
            HomeDirectoryPropagation,
            RandomPropagation,
            StubbornPropagation,
        )
        from repro.machine.simulator import run_program

        program = store_buffering_program()
        enumerated = enumerate_outcomes(program, make_model(model)).outcomes
        policies = [
            StubbornPropagation(), EagerPropagation(),
            RandomPropagation(0.3), HomeDirectoryPropagation.ring(2),
        ]
        for seed in range(8):
            for policy in policies:
                result = run_program(
                    program, make_model(model), seed=seed,
                    propagation=policy,
                )
                assert result.completed
                outcome = tuple(sorted(result.final_memory.items()))
                assert outcome in enumerated, (model, seed, type(policy))

    def test_enumerator_covers_witness_setups(self):
        from repro.programs.litmus import run_store_buffering_witness
        enumerated = enumerate_outcomes(
            store_buffering_program(), make_model("WO")
        ).outcomes
        witness = run_store_buffering_witness(make_model("WO"))
        outcome = tuple(sorted(witness.final_memory.items()))
        assert outcome in enumerated


class TestTheoryConsistency:
    """The three verification layers must agree on random programs:
    SC outcomes are a subset of weak outcomes; exhaustive-DRF programs
    have model-independent outcome sets; dynamic races imply not-DRF."""

    def test_random_program_sweep(self):
        import random as _random
        from repro.analysis.exhaustive import explore_program
        from repro.core.detector import PostMortemDetector
        from repro.machine.simulator import run_program
        from repro.programs.random_programs import (
            random_drf_program, random_racy_program,
        )

        det = PostMortemDetector()
        rng = _random.Random(42)
        for _ in range(12):
            seed = rng.randrange(5000)
            make = (random_drf_program if rng.random() < 0.4
                    else random_racy_program)
            prog = make(seed, processors=2, ops_per_thread=3, shared_vars=2)
            sc = enumerate_outcomes(prog, make_model("SC")).outcomes
            wo = enumerate_outcomes(prog, make_model("WO")).outcomes
            assert sc <= wo, seed
            verdict = explore_program(prog)
            if verdict.program_is_data_race_free:
                assert sc == wo, seed
            for run_seed in range(3):
                result = run_program(prog, make_model("SC"), seed=run_seed)
                if not det.analyze_execution(result).race_free:
                    assert not verdict.program_is_data_race_free, seed


class TestIRIWEnumeration:
    def test_sc_forbids_opposite_orders(self):
        """Exhaustive SC enumeration of IRIW: the opposite-observation
        outcome never appears (the weak side explodes combinatorially;
        its witness is tests/programs/test_litmus.py::TestIRIW)."""
        from repro.programs.litmus import iriw_program
        out = enumerate_outcomes(
            iriw_program(), make_model("SC"),
            interesting=["obs[0]", "obs[1]", "obs[2]", "obs[3]"],
        )
        values = out.values_of("obs[0]", "obs[1]", "obs[2]", "obs[3]")
        assert (1, 0, 1, 0) not in values  # r0: x=1,y=0 ; r1: y=1,x=0
        assert (1, 1, 1, 1) in values      # both saw everything: fine
