"""Metrics tests."""

import pytest

from repro.analysis.metrics import (
    DetectionSummary,
    RaceAccuracy,
    event_race_accuracy,
    op_races_in_scp,
    trace_overhead,
)
from repro.analysis.naive import NaiveDetector
from repro.core.detector import PostMortemDetector
from repro.machine.models import make_model
from repro.machine.simulator import run_program
from repro.programs.kernels import independent_work_program
from repro.trace.build import build_trace


class TestRaceAccuracy:
    def test_precision_perfect_when_nothing_reported(self):
        acc = RaceAccuracy(0, 0, 5, 10)
        assert acc.precision == 1.0

    def test_precision_fraction(self):
        acc = RaceAccuracy(4, 3, 5, 10)
        assert acc.precision == pytest.approx(0.75)

    def test_recall(self):
        acc = RaceAccuracy(4, 3, 6, 10)
        assert acc.recall == pytest.approx(0.5)
        assert RaceAccuracy(0, 0, 0, 0).recall == 1.0


def test_op_races_in_scp_figure2(figure2_result):
    sc_races, scp = op_races_in_scp(figure2_result)
    # The queue races (on Q and QEmpty) are SC; the region races are not.
    addrs = {race.addr for race in sc_races}
    q = figure2_result.symbols.addr_of("Q")
    qe = figure2_result.symbols.addr_of("QEmpty")
    assert addrs == {q, qe}
    assert not scp.is_whole_execution


def test_first_partition_reporting_full_precision(figure2_result, figure2_trace):
    report = PostMortemDetector().analyze(figure2_trace)
    acc = event_race_accuracy(figure2_result, figure2_trace, report.reported_races)
    assert acc.precision == 1.0


def test_naive_reporting_lower_precision(figure2_result, figure2_trace):
    naive = NaiveDetector().analyze(figure2_trace)
    acc = event_race_accuracy(figure2_result, figure2_trace, naive.data_races)
    assert acc.precision < 1.0


def test_trace_overhead_counts(figure2_result, figure2_trace):
    ov = trace_overhead(figure2_result, figure2_trace)
    assert ov.operations == len(figure2_result.operations)
    assert ov.events == figure2_trace.event_count
    assert ov.sync_events + ov.computation_events == ov.events
    # Event records are far fewer than per-op records here (big
    # computation events).
    assert ov.record_ratio < 0.2


def test_trace_overhead_empty_execution():
    result = run_program(independent_work_program(1, 1), make_model("SC"), seed=0)
    trace = build_trace(result)
    ov = trace_overhead(result, trace)
    assert 0 < ov.record_ratio <= 1.0


def test_detection_summary_from_report(figure2_result, figure2_trace):
    report = PostMortemDetector().analyze(figure2_trace)
    summary = DetectionSummary.from_report(figure2_result, report)
    assert summary.model == "WO"
    assert summary.reported_races == 1
    assert summary.suppressed_races == 1
    assert summary.precision == 1.0
