"""The hunt's cross-attempt trace-analysis cache.

Seeds that collapse to identical traces are analyzed once per worker
(cache keyed by the canonical trace fingerprint).  The cache must be
*invisible* in every determinism-bearing output — stats() and
summary() identical with the cache on, off, serial, or parallel — and
visible only in run metadata (HuntResult.trace_cache_hits, to_json,
obs counters)."""

from repro.analysis.hunting import hunt_races
from repro.analysis import parallel
from repro.machine.models import make_model
from repro.programs import (
    buggy_workqueue_program,
    independent_work_program,
    racy_counter_program,
)

import repro


def _wo():
    return make_model("WO")


def test_cache_results_identical_to_uncached():
    """Same stats/summary/report with and without the cache, on a
    workload where many seeds repeat the same trace."""
    program = buggy_workqueue_program()
    cached = hunt_races(program, _wo, tries=18, jobs=1)
    uncached = hunt_races(program, _wo, tries=18, jobs=1, trace_cache=False)
    assert cached.stats() == uncached.stats()
    assert cached.summary() == uncached.summary()
    assert uncached.trace_cache_hits == 0
    assert cached.first_report is not None
    assert uncached.first_report is not None
    assert cached.first_report.format() == uncached.first_report.format()


def test_single_thread_program_hits_on_every_repeat():
    """With one thread there is no scheduling or propagation freedom:
    every attempt produces the same trace, so everything after the
    first analysis per policy-independent trace is a cache hit."""
    program = independent_work_program(processors=1, cells=4)
    result = hunt_races(program, _wo, tries=9, jobs=1)
    assert result.tries == 9
    assert result.trace_cache_hits == 8
    assert not result.found


def test_cache_hits_counted_per_worker():
    """Workers cache independently (fork shares nothing after the
    clear), so parallel hit counts are bounded by the serial count but
    statistics stay identical."""
    program = racy_counter_program(2, 2)
    serial = hunt_races(program, _wo, tries=16, jobs=1)
    parallel_result = hunt_races(program, _wo, tries=16, jobs=4)
    assert parallel_result.stats() == serial.stats()
    assert parallel_result.summary() == serial.summary()
    assert parallel_result.trace_cache_hits <= serial.trace_cache_hits


def test_cache_hits_absent_from_stats_and_summary():
    result = hunt_races(
        independent_work_program(processors=1, cells=4), _wo, tries=6
    )
    assert result.trace_cache_hits > 0
    assert "cache" not in str(result.stats())
    assert "cache" not in result.summary()
    assert result.to_json()["trace_cache_hits"] == result.trace_cache_hits


def test_cache_cleared_between_hunts():
    program = independent_work_program(processors=1, cells=4)
    hunt_races(program, _wo, tries=3, jobs=1)
    assert parallel._TRACE_CACHE  # populated by the hunt just run
    result = hunt_races(program, _wo, tries=3, jobs=1)
    # a warm leftover cache would have made all 3 analyses hits
    assert result.trace_cache_hits == 2


def test_cache_hits_surface_in_stage_profile():
    profiler = repro.obs.Profiler()
    with profiler.activate():
        result = hunt_races(
            independent_work_program(processors=1, cells=4), _wo, tries=6
        )
    assert result.trace_cache_hits == 5
    job_agg = result.stage_profile["hunt.job"]
    assert job_agg["counters"]["trace_cache_hits"] == 5
