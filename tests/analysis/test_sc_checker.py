"""SC witness search tests."""

import pytest

from repro.analysis.sc_checker import (
    ExecutionTooLarge,
    find_sc_witness,
    is_sequentially_consistent,
    verify_witness,
)
from repro.machine.models import make_model
from repro.machine.operations import MemoryOperation, OperationKind, SyncRole
from repro.machine.propagation import StubbornPropagation
from repro.machine.scheduler import ScriptedScheduler
from repro.machine.simulator import Simulator, run_program
from repro.programs.figure1 import figure1a_program, figure1b_program


def _op(seq, proc, local, kind, addr, value):
    return MemoryOperation(
        seq=seq, proc=proc, local_index=local, kind=kind,
        role=SyncRole.NONE, addr=addr, value=value,
    )


R, W = OperationKind.READ, OperationKind.WRITE


def test_trivial_single_write():
    ops = [_op(0, 0, 0, W, 0, 1)]
    witness = find_sc_witness(ops)
    assert witness is not None
    assert verify_witness(ops, witness)


def test_read_of_initial_value():
    ops = [_op(0, 0, 0, R, 0, 0)]
    assert find_sc_witness(ops) is not None


def test_read_of_wrong_initial_value_unsatisfiable():
    ops = [_op(0, 0, 0, R, 0, 7)]
    assert find_sc_witness(ops) is None


def test_initial_memory_honored():
    ops = [_op(0, 0, 0, R, 0, 7)]
    assert find_sc_witness(ops, initial_memory={0: 7}) is not None


def test_requires_interleaving():
    # P0: W x=1 ; P1: R x=1 then R x=0 -- impossible in any SC order
    # (x never returns to 0).
    ops = [
        _op(0, 0, 0, W, 0, 1),
        _op(1, 1, 0, R, 0, 1),
        _op(2, 1, 1, R, 0, 0),
    ]
    assert find_sc_witness(ops) is None


def test_classic_iriw_style_violation():
    """Both readers see the two writes in opposite orders: not SC."""
    ops = [
        _op(0, 0, 0, W, 0, 1),            # P0: x = 1
        _op(1, 1, 0, W, 1, 1),            # P1: y = 1
        _op(2, 2, 0, R, 0, 1), _op(3, 2, 1, R, 1, 0),  # P2: x=1, y=0
        _op(4, 3, 0, R, 1, 1), _op(5, 3, 1, R, 0, 0),  # P3: y=1, x=0
    ]
    assert find_sc_witness(ops) is None


def test_figure1b_weak_run_is_sc():
    result = Simulator(
        figure1b_program(), make_model("WO"),
        scheduler=ScriptedScheduler([0, 0, 0, 1, 1, 1, 1]),
        propagation=StubbornPropagation(), seed=0,
    ).run()
    witness = find_sc_witness(result.operations, initial_memory={2: 1})
    assert witness is not None
    assert verify_witness(result.operations, witness, initial_memory={2: 1})


def test_stale_figure1a_weak_run_checked():
    """A weak figure-1a run where the reader sees y's new value but x's
    old one is not sequentially consistent — and the simulator marks it
    stale; witness search must agree with the stale ledger."""
    result = Simulator(
        figure1a_program(), make_model("WO"),
        scheduler=ScriptedScheduler([0, 0, 1, 1]),
        propagation=StubbornPropagation(), seed=0,
    ).run()
    # Reads both return 0 while writes buffered: this particular shape
    # IS SC (reads first). The ledger says stale (newer committed write
    # existed) but an SC witness exists -- staleness is conservative.
    witness = find_sc_witness(result.operations)
    assert (witness is not None) or result.stale_reads


def test_no_stale_reads_implies_witness():
    """The simulator invariant backing Condition 3.4(1): executions
    without stale reads admit the issue order as an SC witness."""
    for seed in range(8):
        result = run_program(figure1a_program(), make_model("SC"), seed=seed)
        assert not result.stale_reads
        witness = find_sc_witness(result.operations)
        assert witness is not None
        assert verify_witness(result.operations, witness)


def test_too_large_raises():
    ops = [_op(i, 0, i, W, 0, i) for i in range(100)]
    with pytest.raises(ExecutionTooLarge):
        find_sc_witness(ops)


def test_is_sequentially_consistent_wrapper():
    result = run_program(figure1a_program(), make_model("SC"), seed=0)
    assert is_sequentially_consistent(result)


class TestVerifyWitness:
    def test_rejects_wrong_seq_set(self):
        ops = [_op(0, 0, 0, W, 0, 1)]
        from repro.analysis.sc_checker import SCWitness
        assert not verify_witness(ops, SCWitness(order=[5]))

    def test_rejects_program_order_violation(self):
        ops = [_op(0, 0, 0, W, 0, 1), _op(1, 0, 1, W, 0, 2)]
        from repro.analysis.sc_checker import SCWitness
        assert not verify_witness(ops, SCWitness(order=[1, 0]))

    def test_rejects_wrong_read_value(self):
        ops = [_op(0, 0, 0, W, 0, 1), _op(1, 1, 0, R, 0, 9)]
        from repro.analysis.sc_checker import SCWitness
        assert not verify_witness(ops, SCWitness(order=[0, 1]))
