"""Naive baseline detector tests."""

from repro.analysis.naive import NaiveDetector
from repro.core.detector import PostMortemDetector
from repro.machine.models import make_model
from repro.machine.simulator import run_program
from repro.programs.kernels import locked_counter_program


def test_reports_everything_figure2(figure2_result):
    naive = NaiveDetector().analyze_execution(figure2_result)
    ours = PostMortemDetector().analyze_execution(figure2_result)
    # The naive report includes the non-SC region race that the
    # first-partition method suppresses.
    assert len(naive.data_races) == len(ours.data_races)
    assert len(naive.data_races) > len(ours.reported_races)


def test_same_race_universe(figure2_result):
    naive = NaiveDetector().analyze_execution(figure2_result)
    ours = PostMortemDetector().analyze_execution(figure2_result)
    assert {(r.a, r.b) for r in naive.races} == {(r.a, r.b) for r in ours.races}


def test_clean_program_clean_report():
    result = run_program(locked_counter_program(2, 2), make_model("WO"), seed=0)
    naive = NaiveDetector().analyze_execution(result)
    assert naive.data_races == []
    assert "0 data race(s)" in naive.format()


def test_format_lists_races(figure2_result):
    text = NaiveDetector().analyze_execution(figure2_result).format()
    assert "data race" in text
    assert "Naive" in text
