"""Benchmark-report rendering tests."""

import json

from repro.analysis.reporting import (
    render_benchmark_file,
    render_benchmark_results,
)


def _payload():
    return {
        "machine_info": {"python_version": "3.11.7", "machine": "x86_64"},
        "benchmarks": [
            {
                "name": "test_figure1a_detection[SC]",
                "stats": {"mean": 0.00042},
                "extra_info": {
                    "artifact": "Figure 1a under SC: data races present",
                    "rows": ["model=SC: 1 data race(s) reported"],
                },
            },
            {
                "name": "test_big_sweep",
                "stats": {"mean": 2.5},
                "extra_info": {
                    "artifact": "Theorem 3.5 on WO",
                    "rows": ["24 executions checked", "24/24 held"],
                },
            },
            {
                "name": "test_mystery",
                "stats": {"mean": 0.02},
                "extra_info": {},
            },
        ],
    }


def test_groups_by_artifact():
    text = render_benchmark_results(_payload())
    assert "## Figure 1a under SC: data races present" in text
    assert "## Theorem 3.5 on WO" in text
    assert "model=SC: 1 data race(s) reported" in text
    assert "24/24 held" in text


def test_time_formatting():
    text = render_benchmark_results(_payload())
    assert "420 us" in text
    assert "2.50 s" in text


def test_unannotated_listed():
    text = render_benchmark_results(_payload())
    assert "Unannotated benchmarks" in text
    assert "test_mystery" in text


def test_machine_info_in_header():
    text = render_benchmark_results(_payload())
    assert "3.11.7" in text


def test_empty_payload():
    text = render_benchmark_results({"benchmarks": []})
    assert text.startswith("# Regenerated experiment results")


def test_file_roundtrip(tmp_path):
    src = tmp_path / "bench.json"
    src.write_text(json.dumps(_payload()))
    out = tmp_path / "RESULTS.md"
    text = render_benchmark_file(src, out)
    assert out.read_text() == text
    assert "Figure 1a" in text
