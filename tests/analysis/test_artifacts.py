"""Artifact analysis tests — the section 5 analogy in code."""

import pytest

from repro.analysis.artifacts import analyze_artifacts
from repro.machine.models import make_model
from repro.machine.program import ProgramBuilder
from repro.machine.scheduler import ScriptedScheduler
from repro.machine.simulator import Simulator, run_program
from repro.programs.workqueue import buggy_workqueue_program, run_figure2
from repro.trace.build import build_trace


def _artifact_chain_execution():
    """An SC execution with a genuine artifact: P1 reads a racy index
    and then works at the (wrong) indexed location, racing P2 who owns
    that location."""
    b = ProgramBuilder()
    idx = b.var("idx")
    arr = b.array("arr", 8)
    own = b.var("own_lock")
    with b.thread() as t:  # P0: the root bug — unsynchronized index write
        t.write(idx, 4)
    with b.thread() as t:  # P1: racy read, then indexed work
        i = t.read(idx)
        t.unset(own)  # a sync op splits P1's events so the indexed
        t.write(b.at(arr, i), 1)  # work is po-downstream of the race
    with b.thread() as t:  # P2: owns arr[0] (and arr[4] in the racy run)
        t.write(b.at(arr, 0), 2)
        t.write(b.at(arr, 4), 2)
    # P1 reads idx BEFORE P0 writes it: reads 0, works on arr[0],
    # racing P2 — an artifact of the idx race under SC reasoning.
    return Simulator(
        b.build(), make_model("SC"),
        scheduler=ScriptedScheduler([1, 0, 1, 1, 2, 2]), seed=0,
    ).run()


def test_accepts_execution_and_trace():
    result = _artifact_chain_execution()
    a = analyze_artifacts(result)
    b = analyze_artifacts(build_trace(result))
    assert len(a.non_artifact_candidates) == len(b.non_artifact_candidates)


def test_rejects_other_types():
    with pytest.raises(TypeError):
        analyze_artifacts("nope")


def test_root_race_is_non_artifact():
    report = analyze_artifacts(_artifact_chain_execution())
    assert report.non_artifact_candidates
    names = {
        report.trace.addr_name(a)
        for race in report.non_artifact_candidates
        for a in race.locations
    }
    assert "idx" in names


def test_downstream_race_is_possible_artifact():
    report = analyze_artifacts(_artifact_chain_execution())
    artifact_names = {
        report.trace.addr_name(a)
        for race in report.possible_artifacts
        for a in race.locations
    }
    assert any(name.startswith("arr[") for name in artifact_names)


def test_clean_execution():
    from repro.programs.kernels import locked_counter_program
    result = run_program(locked_counter_program(2, 2), make_model("SC"), seed=0)
    report = analyze_artifacts(result)
    assert report.non_artifact_candidates == []
    assert "no data races" in report.format()


def test_format_lists_both_classes():
    text = analyze_artifacts(_artifact_chain_execution()).format()
    assert "non-artifact candidates" in text
    assert "possible artifacts" in text


def test_section5_analogy_sc_vs_weak():
    """The same buggy program analyzed on SC (artifact reading) and on
    a weak model (SCP reading) yields first partitions over the same
    root locations — the analogy the paper draws in section 5."""
    sc_result = run_program(
        buggy_workqueue_program(), make_model("SC"), seed=11
    )
    sc_report = analyze_artifacts(sc_result)
    weak_report = analyze_artifacts(run_figure2(make_model("WO")))

    def root_locations(report):
        return {
            report.trace.addr_name(a)
            for race in report.non_artifact_candidates
            for a in race.locations
        }

    assert root_locations(weak_report) == {"Q", "QEmpty"}
    # On SC the same queue races are the non-artifact roots (subset,
    # since the SC schedule may not exhibit both).
    assert root_locations(sc_report) <= {"Q", "QEmpty"}
    assert root_locations(sc_report)
