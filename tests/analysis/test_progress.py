"""Progress-callback and telemetry-hook tests for the hunt engine:
the serial and parallel runners must report identical (done, total,
racy) streams to subscribers, the early-stop broadcast must shorten
the stream, and the observer hooks (on_outcome, metrics) must see
every completed job."""

import pytest

from repro.analysis.hunting import hunt_races
from repro.analysis.parallel import run_hunt
from repro.machine.models import make_model
from repro.machine.propagation import PropagationPolicy, StubbornPropagation
from repro.obs import metrics
from repro.programs.kernels import racy_counter_program
from repro.programs.workqueue import buggy_workqueue_program


def _wo():
    return make_model("WO")


class _ExplodingPropagation(PropagationPolicy):
    def step(self, memory, rng):
        raise RuntimeError("boom")


# ----------------------------------------------------------------------
# progress callback: serial and parallel paths
# ----------------------------------------------------------------------

@pytest.mark.parametrize("jobs", [1, 2])
def test_progress_called_once_per_job(jobs):
    calls = []
    result = hunt_races(
        racy_counter_program(), _wo, tries=8, jobs=jobs,
        progress=lambda done, total, racy: calls.append(
            (done, total, racy)
        ),
    )
    assert len(calls) == result.tries == 8
    assert [c[0] for c in calls] == list(range(1, 9))  # done advances by 1
    assert all(c[1] == 8 for c in calls)  # total is constant
    racy_stream = [c[2] for c in calls]
    assert racy_stream == sorted(racy_stream)  # racy tally is monotonic
    assert racy_stream[-1] == result.racy_runs


def test_progress_stops_with_early_stop_serial():
    calls = []
    result = hunt_races(
        buggy_workqueue_program(), _wo, tries=30, jobs=1,
        stop_at_first=True,
        progress=lambda done, total, racy: calls.append((done, racy)),
    )
    assert result.found
    # the serial loop breaks right after the first racy job
    assert len(calls) == result.tries < 30
    assert calls[-1][1] == 1


def test_progress_early_stop_broadcast_parallel():
    """Workers may overrun past the first racy index before the
    broadcast lands, but skipped jobs never reach the callback's job
    count beyond the planned total, and the merged result still equals
    the serial prefix."""
    calls = []
    result = hunt_races(
        buggy_workqueue_program(), _wo, tries=30, jobs=4,
        stop_at_first=True,
        progress=lambda done, total, racy: calls.append((done, total)),
    )
    assert result.found
    serial = hunt_races(
        buggy_workqueue_program(), _wo, tries=30, jobs=1,
        stop_at_first=True,
    )
    assert result.stats() == serial.stats()
    # every planned job reports exactly once (skipped ones included)
    assert [c[0] for c in calls] == list(range(1, len(calls) + 1))
    assert all(total == 30 for _, total in calls)


# ----------------------------------------------------------------------
# on_outcome observer
# ----------------------------------------------------------------------

@pytest.mark.parametrize("jobs", [1, 2])
def test_on_outcome_sees_every_job(jobs):
    seen = []
    result = hunt_races(
        racy_counter_program(), _wo, tries=6, jobs=jobs,
        on_outcome=seen.append,
    )
    assert len(seen) == result.tries == 6
    assert sorted(o.job.index for o in seen) == list(range(6))
    assert all(o.status in ("racy", "clean") for o in seen)
    assert all(o.duration >= 0 for o in seen)
    by_status = {"racy": 0, "clean": 0}
    for outcome in seen:
        by_status[outcome.status] += 1
    assert by_status["racy"] == result.racy_runs
    assert by_status["clean"] == result.clean_runs


def test_on_outcome_ordering_relative_to_progress_serial():
    """The observer fires before the progress callback for the same
    job, so a progress-driven UI can read what the observer recorded."""
    order = []
    hunt_races(
        racy_counter_program(), _wo, tries=3, jobs=1,
        on_outcome=lambda outcome: order.append(("outcome",
                                                 outcome.job.index)),
        progress=lambda done, total, racy: order.append(("progress",
                                                         done - 1)),
    )
    assert order == [
        ("outcome", 0), ("progress", 0),
        ("outcome", 1), ("progress", 1),
        ("outcome", 2), ("progress", 2),
    ]


def test_on_outcome_carries_error_and_traceback_serial():
    seen = []
    result = hunt_races(
        racy_counter_program(), _wo, tries=2,
        policies=[("boom", _ExplodingPropagation)],
        jobs=1, on_outcome=seen.append, retry_backoff=0.001,
    )
    # The observer sees the superseded first attempts (status
    # "retried") and the settled failures; boom fails identically on
    # the retry, so each job is classified deterministic after one
    # retry rather than burning through max_retries.
    assert [o.status for o in seen].count("error") == 2
    assert [o.status for o in seen].count("retried") == 2
    assert all(o.status in ("error", "retried") for o in seen)
    assert all("RuntimeError: boom" in o.error for o in seen)
    assert all("RuntimeError: boom" in o.traceback for o in seen)
    assert len(result.failures) == 2
    assert all(f.kind == "deterministic" for f in result.failures)
    assert all(f.retries == 1 for f in result.failures)


def test_on_outcome_errors_without_retries():
    seen = []
    result = hunt_races(
        racy_counter_program(), _wo, tries=2,
        policies=[("boom", _ExplodingPropagation)],
        jobs=1, on_outcome=seen.append, max_retries=0,
    )
    assert all(o.status == "error" for o in seen)
    assert len(seen) == 2
    assert all(f.kind == "unretried" and f.retries == 0
               for f in result.failures)


# ----------------------------------------------------------------------
# metrics registry folding
# ----------------------------------------------------------------------

@pytest.mark.parametrize("jobs", [1, 2])
def test_metrics_param_populates_hunt_family(jobs):
    reg = metrics.MetricsRegistry()
    result = hunt_races(
        racy_counter_program(), _wo, tries=8, jobs=jobs, metrics=reg,
    )
    tries = reg.get("hunt_tries_total")
    assert tries.total() == 8
    # counters split by status match the merged result
    racy = sum(
        entry["value"] for entry in tries.series()
        if entry["labels"]["status"] == "racy"
    )
    assert racy == result.racy_runs
    assert reg.get("hunt_job_duration_seconds").count() == 8
    assert reg.get("hunt_done").value() == 8
    assert reg.get("hunt_total").value() == 8
    assert reg.get("hunt_racy").value() == result.racy_runs
    assert reg.get("hunt_elapsed_seconds").value() > 0
    throughput = reg.get("hunt_throughput")
    assert throughput.latest() is not None
    assert throughput.latest()[1] > 0


def test_active_registry_collected_without_param():
    with metrics.collect() as reg:
        hunt_races(racy_counter_program(), _wo, tries=4, jobs=1)
    assert reg.get("hunt_tries_total").total() == 4


def test_no_registry_no_metrics():
    assert metrics.active() is None
    result = hunt_races(racy_counter_program(), _wo, tries=2, jobs=1)
    assert result.tries == 2  # and nothing blew up with telemetry off


def test_cache_hits_counter_matches_result():
    reg = metrics.MetricsRegistry()
    result = hunt_races(
        buggy_workqueue_program(), _wo, tries=8, jobs=1, metrics=reg,
    )
    hits = reg.get("hunt_trace_cache_hits_total")
    if result.trace_cache_hits:
        assert hits.total() == result.trace_cache_hits
    else:
        assert hits is None  # counter only created on the first hit


def test_metrics_and_on_outcome_compose():
    reg = metrics.MetricsRegistry()
    seen = []
    hunt_races(
        racy_counter_program(), _wo, tries=4, jobs=1,
        metrics=reg, on_outcome=seen.append,
    )
    assert len(seen) == 4
    assert reg.get("hunt_tries_total").total() == 4


# ----------------------------------------------------------------------
# failure tracebacks (engine side of the --json surfacing)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("jobs", [1, 2])
def test_failures_carry_tracebacks_but_stats_do_not(jobs):
    result = hunt_races(
        racy_counter_program(), _wo, tries=4,
        policies=[("boom", _ExplodingPropagation),
                  ("stubborn", StubbornPropagation)],
        jobs=jobs,
    )
    assert len(result.failures) == 2
    for failure in result.failures:
        assert "RuntimeError: boom" in failure.traceback
        assert "Traceback (most recent call last)" in failure.traceback
    # stats() stays a deterministic function of the job set (the
    # retry classification is a function of the error texts, so kind
    # and retry counts qualify; tracebacks do not)
    for entry in result.stats()["failures"]:
        assert set(entry) == {"seed", "policy", "error", "kind",
                              "retries"}
    # ... while the JSON view surfaces the tracebacks
    for entry in result.to_json()["failures"]:
        assert "RuntimeError: boom" in entry["traceback"]


def test_run_hunt_observer_not_built_when_unused():
    """No registry and no on_outcome: run_hunt must not pay for an
    observer closure (the disabled-overhead contract)."""
    result = run_hunt(
        racy_counter_program(), _wo, tries=2,
        policies=[("stubborn", StubbornPropagation)],
    )
    assert result.tries == 2
