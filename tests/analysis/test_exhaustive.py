"""Exhaustive SC-execution exploration tests (Definition 2.4)."""

import pytest

from repro.analysis.exhaustive import (
    ExhaustiveExplorer,
    ExplorationLimit,
    explore_program,
    is_program_data_race_free,
)
from repro.machine.program import ProgramBuilder
from repro.programs.figure1 import figure1a_program, figure1b_program
from repro.programs.kernels import (
    locked_counter_program,
    producer_consumer_program,
    racy_counter_program,
    single_race_program,
)


class TestKnownVerdicts:
    def test_figure1a_not_drf(self):
        assert not is_program_data_race_free(figure1a_program())

    def test_figure1b_drf(self):
        assert is_program_data_race_free(figure1b_program())

    def test_single_race_not_drf(self):
        assert not is_program_data_race_free(single_race_program())

    def test_locked_counter_drf(self):
        assert is_program_data_race_free(locked_counter_program(2, 2))

    def test_racy_counter_not_drf(self):
        assert not is_program_data_race_free(racy_counter_program(2, 1))

    def test_producer_consumer_drf(self):
        assert is_program_data_race_free(producer_consumer_program(2))


class TestWitness:
    def test_witness_schedule_reproduces_race(self):
        """Replaying the returned schedule under SC must hit a race."""
        from repro.core.ophb import find_op_races
        from repro.machine.models import make_model
        from repro.machine.scheduler import ScriptedScheduler
        from repro.machine.simulator import Simulator

        program = figure1a_program()
        result = explore_program(program)
        assert result.racing_schedule is not None
        sim = Simulator(
            program, make_model("SC"),
            scheduler=ScriptedScheduler(result.racing_schedule), seed=0,
        )
        res = sim.run()
        races = [r for r in find_op_races(res.operations) if r.is_data_race]
        assert races

    def test_drf_program_has_no_witness(self):
        result = explore_program(figure1b_program())
        assert result.racing_schedule is None
        assert result.program_is_data_race_free


class TestRaceSensitivity:
    def test_race_only_on_some_schedules_still_found(self):
        """A race reachable only through one branch direction must be
        found by exhaustive search even if the common schedule is
        clean."""
        b = ProgramBuilder()
        flag = b.var("flag")
        x = b.var("x")
        with b.thread() as t:  # writes flag, then x
            t.write(flag, 1)
            t.write(x, 1)
        with b.thread() as t:  # touches x only if it saw flag==1
            f = t.read(flag)
            t.jump_if_zero(f, "end")
            t.write(x, 2)
            t.label("end")
        # Already racy via the flag accesses themselves; check x also
        # shows up in some interleaving by at least confirming not-DRF.
        assert not is_program_data_race_free(b.build())

    def test_sync_data_conflict_counts_as_race(self):
        b = ProgramBuilder()
        s = b.var("s")
        with b.thread() as t:
            t.unset(s)       # sync write
        with b.thread() as t:
            t.read(s)        # data read of the same location
        assert not is_program_data_race_free(b.build())

    def test_sync_sync_conflict_not_a_data_race(self):
        b = ProgramBuilder()
        s = b.var("s")
        with b.thread() as t:
            t.unset(s)
        with b.thread() as t:
            t.unset(s)
        assert is_program_data_race_free(b.build())


class TestSpinBlocking:
    def test_contended_lock_explored_fully(self):
        result = explore_program(locked_counter_program(2, 1))
        assert result.program_is_data_race_free
        assert result.executions_explored >= 2  # both acquisition orders

    def test_deadlock_counted_not_fatal(self):
        b = ProgramBuilder()
        s = b.var("s", initial=1)  # held forever
        with b.thread() as t:
            t.lock(s)
        result = explore_program(b.build())
        assert result.deadlocked_paths >= 1
        assert result.executions_explored == 0
        assert result.program_is_data_race_free  # vacuously


class TestLimits:
    def test_state_limit_raises(self):
        with pytest.raises(ExplorationLimit):
            ExhaustiveExplorer(
                locked_counter_program(3, 3), max_states=10
            ).explore()

    def test_memoization_prunes(self):
        """Two independent single-write threads: 2 interleavings but a
        shared final state; memoization keeps states well below the
        naive product."""
        b = ProgramBuilder()
        x, y = b.var("x"), b.var("y")
        with b.thread() as t:
            t.write(x, 1)
        with b.thread() as t:
            t.write(y, 1)
        result = explore_program(b.build())
        assert result.program_is_data_race_free
        assert result.states_visited <= 12


class TestAgreementWithDynamic:
    def test_dynamic_detection_subset_of_exhaustive(self):
        """If any single dynamic execution shows a data race the
        program cannot be DRF; if exhaustive says DRF, every dynamic
        run must be clean."""
        from repro.core.detector import PostMortemDetector
        from repro.machine.models import make_model
        from repro.machine.simulator import run_program
        from repro.programs.random_programs import random_racy_program

        det = PostMortemDetector()
        for seed in range(8):
            prog = random_racy_program(
                seed, processors=2, ops_per_thread=3, shared_vars=2,
                race_prob=0.5,
            )
            drf = is_program_data_race_free(prog, max_states=500_000)
            if drf:
                for run_seed in range(4):
                    result = run_program(prog, make_model("SC"), seed=run_seed)
                    assert det.analyze_execution(result).race_free, (seed, run_seed)
