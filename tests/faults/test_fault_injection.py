"""Fault plans driven through the real hunt engine, in-process:
crashes and hangs in serial and forked-pool workers, env-var
activation crossing the fork boundary, and the no-numpy degradation
path."""

import json

import pytest

from repro import faults
from repro.analysis.hunting import hunt_races
from repro.faults import ENV_VAR, FaultPlan
from repro.machine.models import make_model
from repro.programs.kernels import racy_counter_program


def _wo():
    return make_model("WO")


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    faults.clear()
    yield
    faults.clear()


# ----------------------------------------------------------------------
# crashes through the engine
# ----------------------------------------------------------------------

@pytest.mark.parametrize("jobs", [1, 2])
def test_persistent_crash_surfaces_as_deterministic_failure(jobs):
    faults.install(FaultPlan(crash={2: 99}))
    result = hunt_races(racy_counter_program(), _wo, tries=8, jobs=jobs,
                        retry_backoff=0.001)
    assert result.tries == 8
    assert len(result.failures) == 1
    assert result.failures[0].kind == "deterministic"
    assert "InjectedCrash" in result.failures[0].error
    # the other 7 jobs were unaffected
    assert result.racy_runs + result.clean_runs == 7


def test_crash_result_identical_serial_vs_parallel():
    results = []
    for jobs in (1, 2):
        faults.install(FaultPlan(crash={2: 99, 5: 1}))
        results.append(hunt_races(racy_counter_program(), _wo, tries=8,
                                  jobs=jobs, retry_backoff=0.001))
        faults.clear()
    assert results[0].stats() == results[1].stats()
    # job 2 retries once before settling deterministic; job 5's single
    # retry succeeds — two retried attempts either way
    assert results[0].retried_runs == results[1].retried_runs == 2


# ----------------------------------------------------------------------
# hangs through the engine (bounded by job_timeout)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("jobs", [1, 2])
def test_hang_is_bounded_by_job_timeout(jobs):
    faults.install(FaultPlan(hang={0: 99}, hang_seconds=30.0))
    result = hunt_races(racy_counter_program(), _wo, tries=4, jobs=jobs,
                        job_timeout=0.2, max_retries=0)
    assert len(result.failures) == 1
    assert "JobTimeout" in result.failures[0].error
    assert result.racy_runs + result.clean_runs == 3


# ----------------------------------------------------------------------
# env activation crosses the fork boundary
# ----------------------------------------------------------------------

def test_env_plan_reaches_forked_workers(monkeypatch):
    monkeypatch.setenv(ENV_VAR, json.dumps({"crash": {"3": 1}}))
    result = hunt_races(racy_counter_program(), _wo, tries=8, jobs=2,
                        retry_backoff=0.001)
    assert not result.failures
    assert result.retried_runs == 1


def test_env_plan_file_reaches_forked_workers(monkeypatch, tmp_path):
    plan_file = tmp_path / "plan.json"
    plan_file.write_text(json.dumps({"crash": {"3": 99}}))
    monkeypatch.setenv(ENV_VAR, str(plan_file))
    result = hunt_races(racy_counter_program(), _wo, tries=8, jobs=2,
                        retry_backoff=0.001)
    assert len(result.failures) == 1
    assert result.failures[0].kind == "deterministic"


# ----------------------------------------------------------------------
# degraded-dependency path: hunting without numpy
# ----------------------------------------------------------------------

def test_no_numpy_hunt_still_finds_races():
    from repro.core import hb1_vc

    original = hb1_vc._np
    try:
        faults.install(FaultPlan(no_numpy=True))
        degraded = hunt_races(racy_counter_program(), _wo, tries=6,
                              jobs=1)
        assert hb1_vc._np is None  # the fault actually applied
    finally:
        hb1_vc._np = original
    faults.clear()
    normal = hunt_races(racy_counter_program(), _wo, tries=6, jobs=1)
    # the pure-python fallback is slower but must agree on the physics
    assert degraded.stats() == normal.stats()


def test_fault_free_plan_changes_nothing():
    baseline = hunt_races(racy_counter_program(), _wo, tries=6, jobs=1)
    faults.install(FaultPlan())
    with_plan = hunt_races(racy_counter_program(), _wo, tries=6, jobs=1)
    assert with_plan.stats() == baseline.stats()
    assert with_plan.retried_runs == 0
