"""Fault-plan unit tests: parsing/validation, the env activation hook,
and the deterministic injection points."""

import json

import pytest

from repro import faults
from repro.faults import (
    ENV_VAR,
    FaultPlan,
    FaultPlanError,
    InjectedCrash,
    active_plan,
    append_garbage,
    tear_file,
)


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    faults.clear()
    yield
    faults.clear()


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------

def test_from_json_full_plan():
    plan = FaultPlan.from_json({
        "crash": {"3": 1}, "hang": {"5": 2}, "hang_seconds": 0.5,
        "kill_parent_after": 7, "no_numpy": True,
    })
    assert plan.crash == {3: 1}
    assert plan.hang == {5: 2}
    assert plan.hang_seconds == 0.5
    assert plan.kill_parent_after == 7
    assert plan.no_numpy is True


def test_from_json_rejects_unknown_keys():
    with pytest.raises(FaultPlanError, match="unknown fault plan key"):
        FaultPlan.from_json({"crashes": {"0": 1}})


def test_from_json_rejects_non_object():
    with pytest.raises(FaultPlanError, match="must be a JSON object"):
        FaultPlan.from_json([1, 2])


def test_from_json_rejects_bad_index_map():
    with pytest.raises(FaultPlanError, match="must map job index"):
        FaultPlan.from_json({"crash": [0, 1]})
    with pytest.raises(FaultPlanError, match="bad 'crash' entry"):
        FaultPlan.from_json({"crash": {"zero": 1}})


def test_from_json_rejects_nonpositive_kill():
    with pytest.raises(FaultPlanError, match="kill_parent_after"):
        FaultPlan.from_json({"kill_parent_after": 0})


# ----------------------------------------------------------------------
# activation
# ----------------------------------------------------------------------

def test_no_plan_by_default():
    assert active_plan() is None


def test_install_wins_over_env(monkeypatch):
    monkeypatch.setenv(ENV_VAR, json.dumps({"crash": {"0": 1}}))
    installed = FaultPlan(crash={9: 1})
    faults.install(installed)
    assert active_plan() is installed


def test_env_inline_json(monkeypatch):
    monkeypatch.setenv(ENV_VAR, json.dumps({"crash": {"2": 1}}))
    plan = active_plan()
    assert plan is not None and plan.crash == {2: 1}
    # parsed once per distinct value (cached)
    assert active_plan() is plan


def test_env_file_path(monkeypatch, tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(json.dumps({"hang": {"1": 1}, "hang_seconds": 0.1}))
    monkeypatch.setenv(ENV_VAR, str(path))
    plan = active_plan()
    assert plan is not None and plan.hang == {1: 1}


def test_env_bad_json_raises(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "{torn")
    with pytest.raises(FaultPlanError, match="invalid JSON"):
        active_plan()


def test_env_missing_file_raises(monkeypatch, tmp_path):
    monkeypatch.setenv(ENV_VAR, str(tmp_path / "nope.json"))
    with pytest.raises(FaultPlanError, match="unreadable"):
        active_plan()


# ----------------------------------------------------------------------
# injection points
# ----------------------------------------------------------------------

def test_crash_fires_while_attempt_below_count():
    plan = FaultPlan(crash={4: 2})
    with pytest.raises(InjectedCrash):
        plan.on_job_start(4, 0)
    with pytest.raises(InjectedCrash):
        plan.on_job_start(4, 1)
    plan.on_job_start(4, 2)  # third attempt succeeds
    plan.on_job_start(5, 0)  # other jobs untouched


def test_crash_message_is_attempt_independent():
    """Identical messages across attempts are what lets the retry
    layer classify an always-crashing job as deterministic."""
    plan = FaultPlan(crash={4: 9})
    messages = set()
    for attempt in range(3):
        with pytest.raises(InjectedCrash) as exc_info:
            plan.on_job_start(4, attempt)
        messages.add(str(exc_info.value))
    assert len(messages) == 1


def test_no_numpy_patches_vector_clock_layer():
    from repro.core import hb1_vc
    original = hb1_vc._np
    try:
        faults.install(FaultPlan(no_numpy=True))
        faults.apply_process_faults()
        assert hb1_vc._np is None
    finally:
        hb1_vc._np = original


def test_apply_process_faults_noop_without_plan():
    from repro.core import hb1_vc
    original = hb1_vc._np
    faults.apply_process_faults()
    assert hb1_vc._np is original


# ----------------------------------------------------------------------
# torn-artifact helpers
# ----------------------------------------------------------------------

def test_tear_file_drops_tail_bytes(tmp_path):
    path = tmp_path / "f.json"
    path.write_text("0123456789")
    tear_file(path, drop_bytes=4)
    assert path.read_text() == "012345"
    tear_file(path, drop_bytes=100)  # never goes negative
    assert path.read_text() == ""


def test_append_garbage_is_undecodable(tmp_path):
    path = tmp_path / "f.jsonl"
    path.write_text('{"ok": true}\n')
    append_garbage(path)
    lines = path.read_bytes().splitlines()
    with pytest.raises(Exception):
        json.loads(lines[-1])
