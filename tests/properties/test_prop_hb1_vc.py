"""Property tests of ``VectorClockHB1.ordered``'s O(1) epoch test.

The epoch test answers ``a hb1 b`` by checking a single component —
``clock(b)[a.proc] >= clock(a)[a.proc]`` — instead of the full
pointwise comparison.  That shortcut is only sound if an event's own
component flows to exactly its hb1 successors, which is where clock
*merges* (events with several predecessors) and cross-processor so1
chains can go wrong.  These tests pit the epoch test against both the
full pointwise comparison and the transitive-closure backend on traces
engineered to maximize multi-predecessor merges and long so1 chains:
every sync value is 0, so every release -> acquire pair on a lock forms
an so1 edge, and acquires that also have a program-order predecessor
merge two clocks.

The generic-trace generator is reused from
:mod:`tests.properties.test_prop_traces`.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hb1 import HappensBefore1
from repro.core.hb1_vc import CyclicHB1Error, VectorClockHB1
from repro.trace.bitvector import BitVector
from repro.trace.build import Trace
from repro.trace.events import ComputationEvent, EventId, SyncEvent
from repro.machine.operations import OperationKind, SyncRole

from tests.properties.test_prop_traces import traces

N_LOCKS = 2
N_DATA = 3


@st.composite
def sync_chain_traces(draw):
    """Traces biased toward so1 chains and multi-predecessor merges.

    Every sync value is 0 (so release/acquire values always match) and
    acquire/release events dominate, producing long cross-processor
    release -> acquire chains; computation events with multi-location
    READ/WRITE sets ride between them.
    """
    nproc = draw(st.integers(2, 4))
    proc_plans = []
    for _ in range(nproc):
        n_events = draw(st.integers(1, 6))
        plan = []
        for _ in range(n_events):
            kind = draw(st.sampled_from(
                ["acq", "rel", "acq", "rel", "comp"]  # sync-heavy
            ))
            if kind == "comp":
                reads = draw(st.sets(st.integers(0, N_DATA - 1), max_size=3))
                writes = draw(st.sets(st.integers(0, N_DATA - 1), max_size=3))
                plan.append(("comp", reads, writes))
            else:
                addr = N_DATA + draw(st.integers(0, N_LOCKS - 1))
                plan.append((kind, addr))
        proc_plans.append(plan)

    events = [[] for _ in range(nproc)]
    pending = [list(plan) for plan in proc_plans]
    sync_order = {}
    while any(pending):
        available = [p for p in range(nproc) if pending[p]]
        proc = draw(st.sampled_from(available))
        descriptor = pending[proc].pop(0)
        eid = EventId(proc, len(events[proc]))
        if descriptor[0] == "comp":
            _, reads, writes = descriptor
            events[proc].append(ComputationEvent(
                eid=eid, reads=BitVector(reads), writes=BitVector(writes),
            ))
            continue
        kind, addr = descriptor
        order = sync_order.setdefault(addr, [])
        if kind == "acq":
            op_kind, role = OperationKind.READ, SyncRole.ACQUIRE
        else:
            op_kind, role = OperationKind.WRITE, SyncRole.RELEASE
        events[proc].append(SyncEvent(
            eid=eid, addr=addr, op_kind=op_kind, role=role,
            value=0, order_pos=len(order),
        ))
        order.append(eid)

    return Trace(
        processor_count=nproc,
        memory_size=N_DATA + N_LOCKS,
        events=events,
        sync_order=sync_order,
        model_name="synthetic-sync-chains",
    )


def _pointwise_hb(vc, a, b):
    """The textbook definition the epoch test is shortcutting:
    a hb1 b iff clock(a) <= clock(b) pointwise (a != b)."""
    ca, cb = vc.clock_of(a), vc.clock_of(b)
    return a != b and all(x <= y for x, y in zip(ca, cb))


@given(sync_chain_traces())
@settings(max_examples=200, deadline=None)
def test_epoch_test_equals_pointwise_comparison(trace):
    try:
        vc = VectorClockHB1(trace)
    except CyclicHB1Error:
        return
    events = [e.eid for e in trace.all_events()]
    for a in events:
        for b in events:
            if a != b:
                assert vc.ordered(a, b) == _pointwise_hb(vc, a, b), (a, b)


@given(sync_chain_traces())
@settings(max_examples=200, deadline=None)
def test_epoch_test_matches_closure_on_sync_chains(trace):
    closure = HappensBefore1(trace)
    try:
        vc = VectorClockHB1(trace)
    except CyclicHB1Error:
        assert not closure.is_partial_order()
        return
    events = [e.eid for e in trace.all_events()]
    for a in events:
        for b in events:
            if a == b:
                continue
            assert closure.ordered(a, b) == vc.ordered(a, b), (a, b)
            assert closure.unordered(a, b) == vc.unordered(a, b), (a, b)


@given(sync_chain_traces())
@settings(max_examples=150, deadline=None)
def test_merge_is_componentwise_max_over_predecessors(trace):
    """Each clock is the pointwise max of its predecessors' clocks,
    with the event's own component set to its position + 1 — checked
    directly on events with multiple predecessors (the merges)."""
    try:
        vc = VectorClockHB1(trace)
    except CyclicHB1Error:
        return
    nproc = trace.processor_count
    for event in trace.all_events():
        eid = event.eid
        clock = vc.clock_of(eid)
        preds = list(vc.graph.predecessors(eid))
        for i in range(nproc):
            expected = max(
                (vc.clock_of(p)[i] for p in preds), default=0
            )
            if i == eid.proc:
                expected = eid.pos + 1
            assert clock[i] == expected, (eid, i, preds)


@given(traces())
@settings(max_examples=150, deadline=None)
def test_epoch_test_equals_pointwise_on_generic_traces(trace):
    """Same epoch-vs-pointwise equivalence on the unbiased generator
    (arbitrary sync values, so sparser so1 edges)."""
    try:
        vc = VectorClockHB1(trace)
    except CyclicHB1Error:
        return
    events = [e.eid for e in trace.all_events()]
    for a in events:
        for b in events:
            if a != b:
                assert vc.ordered(a, b) == _pointwise_hb(vc, a, b), (a, b)


@given(st.integers(2, 5), st.integers(1, 4))
@settings(max_examples=60, deadline=None)
def test_cross_processor_so1_chain_is_totally_ordered(nproc, rounds):
    """A deterministic release -> acquire relay across processors:
    P0 rel, P1 acq rel, P2 acq rel, ... — every event must be hb1-after
    every earlier event in the chain (transitivity through so1), and
    the epoch test must see it."""
    lock = 0
    events = [[] for _ in range(nproc)]
    sync_order = {lock: []}
    chain = []

    def emit(proc, role):
        eid = EventId(proc, len(events[proc]))
        op_kind = (
            OperationKind.READ if role is SyncRole.ACQUIRE
            else OperationKind.WRITE
        )
        events[proc].append(SyncEvent(
            eid=eid, addr=lock, op_kind=op_kind, role=role,
            value=0, order_pos=len(sync_order[lock]),
        ))
        sync_order[lock].append(eid)
        chain.append(eid)

    emit(0, SyncRole.RELEASE)
    for r in range(rounds):
        for proc in range(1, nproc):
            emit(proc, SyncRole.ACQUIRE)
            emit(proc, SyncRole.RELEASE)

    trace = Trace(
        processor_count=nproc, memory_size=1, events=events,
        sync_order=sync_order, model_name="so1-chain",
    )
    closure = HappensBefore1(trace)
    vc = VectorClockHB1(trace)
    for i, a in enumerate(chain):
        for b in chain[i + 1:]:
            if a.proc == b.proc:
                continue
            assert vc.ordered(a, b), (a, b)
            assert closure.ordered(a, b), (a, b)
            assert not vc.ordered(b, a)
