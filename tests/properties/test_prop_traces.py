"""Property-based tests of the detection pipeline over synthetic traces.

The simulator-based property tests only produce traces a compliant
machine can generate; these generate *arbitrary* structurally-valid
traces (random event sequences, random sync interleavings, random
READ/WRITE sets), checking the algorithmic invariants of sections 4.1
and 4.2 hold unconditionally — including the structural halves of
Theorems 4.1 and 4.2 that don't depend on hardware compliance.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detector import PostMortemDetector
from repro.core.hb1 import HappensBefore1
from repro.core.partitions import partition_races
from repro.core.races import find_races
from repro.machine.operations import OperationKind, SyncRole
from repro.trace.bitvector import BitVector
from repro.trace.build import Trace
from repro.trace.events import (
    ComputationEvent,
    EventId,
    SyncEvent,
    conflicting_locations,
)

DET = PostMortemDetector()

N_LOCKS = 2
N_DATA = 4


@st.composite
def traces(draw):
    nproc = draw(st.integers(2, 4))
    # Per processor: a list of event descriptors.
    proc_plans = []
    for _ in range(nproc):
        n_events = draw(st.integers(0, 5))
        plan = []
        for _ in range(n_events):
            kind = draw(st.sampled_from(["comp", "acq", "rel", "tsw"]))
            if kind == "comp":
                reads = draw(st.sets(st.integers(0, N_DATA - 1), max_size=3))
                writes = draw(st.sets(st.integers(0, N_DATA - 1), max_size=3))
                plan.append(("comp", reads, writes))
            else:
                addr = N_DATA + draw(st.integers(0, N_LOCKS - 1))
                value = draw(st.integers(0, 2))
                plan.append((kind, addr, value))
        proc_plans.append(plan)

    # A global interleaving of the sync events, respecting per-proc order,
    # determines each location's sync order.
    events = [[] for _ in range(nproc)]
    pending = [list(plan) for plan in proc_plans]
    sync_order = {}
    # random interleave via repeatedly drawing a proc with work left
    while any(pending):
        available = [p for p in range(nproc) if pending[p]]
        proc = draw(st.sampled_from(available))
        descriptor = pending[proc].pop(0)
        pos = len(events[proc])
        eid = EventId(proc, pos)
        if descriptor[0] == "comp":
            _, reads, writes = descriptor
            events[proc].append(ComputationEvent(
                eid=eid, reads=BitVector(reads), writes=BitVector(writes),
            ))
            continue
        kind, addr, value = descriptor
        order = sync_order.setdefault(addr, [])
        if kind == "acq":
            op_kind, role = OperationKind.READ, SyncRole.ACQUIRE
        elif kind == "rel":
            op_kind, role = OperationKind.WRITE, SyncRole.RELEASE
        else:
            op_kind, role = OperationKind.WRITE, SyncRole.SYNC_ONLY
        events[proc].append(SyncEvent(
            eid=eid, addr=addr, op_kind=op_kind, role=role,
            value=value, order_pos=len(order),
        ))
        order.append(eid)

    return Trace(
        processor_count=nproc,
        memory_size=N_DATA + N_LOCKS,
        events=events,
        sync_order=sync_order,
        model_name="synthetic",
    )


@given(traces())
@settings(max_examples=200, deadline=None)
def test_races_are_exactly_conflicting_unordered_pairs(trace):
    hb = HappensBefore1(trace)
    races = find_races(trace, hb)
    race_keys = {(race.a, race.b) for race in races}
    all_events = trace.all_events()
    for i, ea in enumerate(all_events):
        for eb in all_events[i + 1:]:
            if ea.eid.proc == eb.eid.proc:
                continue
            locs = conflicting_locations(ea, eb)
            key = tuple(sorted((ea.eid, eb.eid)))
            expected = bool(locs) and hb.unordered(ea.eid, eb.eid)
            assert (key in race_keys) == expected, key


@given(traces())
@settings(max_examples=200, deadline=None)
def test_race_location_sets_match(trace):
    hb = HappensBefore1(trace)
    for race in find_races(trace, hb):
        ea, eb = trace.event(race.a), trace.event(race.b)
        assert list(race.locations) == conflicting_locations(ea, eb)
        assert race.is_data_race == (
            ea.is_computation or eb.is_computation
        )


@given(traces())
@settings(max_examples=200, deadline=None)
def test_partitions_partition_the_races(trace):
    hb = HappensBefore1(trace)
    races = find_races(trace, hb)
    analysis = partition_races(trace, hb, races)
    seen = []
    for partition in analysis.partitions:
        seen.extend(partition.races)
    assert sorted(seen, key=lambda r: (r.a, r.b)) == races
    # endpoints of each race share the partition's SCC
    for partition in analysis.partitions:
        for race in partition.races:
            assert race.a in partition.events
            assert race.b in partition.events


@given(traces())
@settings(max_examples=200, deadline=None)
def test_theorem_41_structural_half(trace):
    """First partitions containing data races exist iff data races
    exist — holds for arbitrary traces because partition precedence is
    a strict partial order, so a minimal data-race partition exists."""
    report = DET.analyze(trace)
    assert bool(report.first_partitions) == bool(report.data_races)


@given(traces())
@settings(max_examples=200, deadline=None)
def test_first_partitions_unpreceded(trace):
    report = DET.analyze(trace)
    analysis = report.analysis
    data_partitions = [p for p in analysis.partitions if p.has_data_race]
    for partition in analysis.partitions:
        preceded = any(
            other is not partition and analysis.precedes(other, partition)
            for other in data_partitions
        )
        assert partition.is_first == (not preceded)


@given(traces())
@settings(max_examples=150, deadline=None)
def test_report_counts_consistent(trace):
    report = DET.analyze(trace)
    assert (
        len(report.reported_races) + len(report.suppressed_races)
        == len(report.data_races)
    )
    assert len(report.data_races) + len(report.sync_races) == len(report.races)
    # formatting never crashes and mentions the verdict
    text = report.format()
    if report.race_free:
        assert "No data races" in text


@given(traces())
@settings(max_examples=100, deadline=None)
def test_dot_rendering_total(trace):
    report = DET.analyze(trace)
    dot = report.to_dot()
    assert dot.startswith("digraph")
    assert dot.rstrip().endswith("}")


@given(traces())
@settings(max_examples=150, deadline=None)
def test_so1_pairing_rules(trace):
    """Every so1 edge is release->acquire on one location with equal
    values, across processors, with the release the most recent sync
    write before the acquire in the location's order."""
    hb = HappensBefore1(trace)
    for release_eid, acquire_eid in hb.so1_edges:
        release = trace.event(release_eid)
        acquire = trace.event(acquire_eid)
        assert release.role is SyncRole.RELEASE
        assert acquire.role is SyncRole.ACQUIRE
        assert release.addr == acquire.addr
        assert release.value == acquire.value
        assert release_eid.proc != acquire_eid.proc
        order = trace.sync_order[release.addr]
        r_pos, a_pos = order.index(release_eid), order.index(acquire_eid)
        assert r_pos < a_pos
        # no sync WRITE in between
        for eid in order[r_pos + 1:a_pos]:
            assert not trace.event(eid).writes_addr


@given(traces())
@settings(max_examples=150, deadline=None)
def test_vector_clock_backend_equivalent(trace):
    """On every acyclic synthetic trace, the vector-clock hb1 backend
    answers ordering queries identically to the transitive closure."""
    from repro.core.hb1_vc import CyclicHB1Error, VectorClockHB1
    closure = HappensBefore1(trace)
    try:
        vc = VectorClockHB1(trace)
    except CyclicHB1Error:
        assert not closure.is_partial_order()
        return
    events = [e.eid for e in trace.all_events()]
    for a in events:
        for b in events:
            if a != b:
                assert closure.ordered(a, b) == vc.ordered(a, b)
