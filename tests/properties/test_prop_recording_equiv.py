"""Recording equivalence properties for the delivery-log recorder.

`_RecordingPropagation` used to infer each step's voluntary deliveries
by snapshotting and diffing every pending write's remaining-reader set
around the inner policy step — O(pending x readers) per step and the
hunt's single hottest function.  It now drains the memory system's
O(deliveries) log instead.  The change is only safe if

* wrapping an execution in the recorder never perturbs it: a recorded
  run and a bare run with the same seed must produce identical
  operation streams (the recorder consumes no RNG and delivers
  nothing itself), and
* the recordings it produces are *byte-identical* to the old diff
  format — existing recording files must replay against the new code
  and vice versa, so the deliveries must come out in the exact order
  the diff emitted (increasing pending seq, then sorted readers).

The old diff-based recorder is reimplemented here verbatim as the
reference implementation.
"""

import json
import random
from typing import List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.models import make_model
from repro.machine.memory import MemorySystem
from repro.machine.propagation import (
    EagerPropagation,
    HoldbackPropagation,
    HomeDirectoryPropagation,
    PropagationPolicy,
    RandomPropagation,
    StubbornPropagation,
)
from repro.machine.replay import (
    ExecutionRecording,
    _RecordingScheduler,
    executions_equal,
    record_execution,
    replay_execution,
)
from repro.machine.scheduler import RandomScheduler
from repro.machine.simulator import Simulator, run_program
from repro.programs import (
    buggy_workqueue_program,
    producer_consumer_program,
    racy_counter_program,
    single_race_program,
)

from tests.properties.test_prop_machine import random_racy_program


class _DiffRecordingPropagation(PropagationPolicy):
    """The old snapshot-diff recorder, kept as the reference."""

    def __init__(self, inner: PropagationPolicy, recording: ExecutionRecording):
        self.inner = inner
        self.recording = recording

    def step(self, memory: MemorySystem, rng: random.Random) -> None:
        before = {
            pw.seq: set(pw.remaining) for pw in memory.pending_writes()
        }
        self.inner.step(memory, rng)
        after = {
            pw.seq: set(pw.remaining) for pw in memory.pending_writes()
        }
        delivered: List[Tuple[int, int]] = []
        for seq, readers in before.items():
            now = after.get(seq, set())
            for reader in sorted(readers - now):
                delivered.append((seq, reader))
        self.recording.deliveries.append(delivered)


def _record_with_diff(program, model, policy, seed, max_steps=50_000):
    recording = ExecutionRecording(model_name=model.name)
    sim = Simulator(
        program,
        model,
        scheduler=_RecordingScheduler(RandomScheduler(), recording),
        propagation=_DiffRecordingPropagation(policy, recording),
        seed=seed,
    )
    return sim.run(max_steps=max_steps), recording


PROGRAMS = [
    ("racy-counter", lambda: racy_counter_program(2, 2)),
    ("workqueue-buggy", buggy_workqueue_program),
    ("producer-consumer", lambda: producer_consumer_program(3)),
    ("single-race", single_race_program),
]

POLICIES = [
    ("random-0.2", lambda: RandomPropagation(0.2)),
    ("random-0.5", lambda: RandomPropagation(0.5)),
    ("stubborn", StubbornPropagation),
    ("eager", EagerPropagation),
    ("holdback", lambda: HoldbackPropagation({0})),
    ("ring", lambda: HomeDirectoryPropagation.ring(2)),
]


@given(
    seed=st.integers(0, 500),
    program_index=st.integers(0, len(PROGRAMS) - 1),
    policy_index=st.integers(0, len(POLICIES) - 1),
    model=st.sampled_from(["SC", "WO", "RCsc"]),
)
@settings(max_examples=60, deadline=None)
def test_recording_wrapper_does_not_perturb_execution(
    seed, program_index, policy_index, model
):
    """Recorded run == bare run with the same seed, operation for
    operation (the recorder is a pure observer)."""
    _, build = PROGRAMS[program_index]
    _, policy = POLICIES[policy_index]
    program = build()
    bare = run_program(
        program, make_model(model), propagation=policy(), seed=seed
    )
    recorded, _recording = record_execution(
        program, make_model(model), propagation=policy(), seed=seed
    )
    assert executions_equal(bare, recorded)


@given(
    seed=st.integers(0, 500),
    program_index=st.integers(0, len(PROGRAMS) - 1),
    policy_index=st.integers(0, len(POLICIES) - 1),
    model=st.sampled_from(["SC", "WO", "RCsc"]),
)
@settings(max_examples=60, deadline=None)
def test_delivery_log_matches_diff_format(
    seed, program_index, policy_index, model
):
    """The delivery-log recorder emits exactly the old diff-based
    recorder's schedule and per-step deliveries, and its recording
    replays to the original execution."""
    _, build = PROGRAMS[program_index]
    _, policy = POLICIES[policy_index]
    program = build()
    old_result, old_recording = _record_with_diff(
        program, make_model(model), policy(), seed
    )
    new_result, new_recording = record_execution(
        program, make_model(model), propagation=policy(), seed=seed,
        max_steps=50_000,
    )
    assert executions_equal(old_result, new_result)
    assert new_recording.schedule == old_recording.schedule
    assert [
        [tuple(d) for d in step] for step in new_recording.deliveries
    ] == [
        [tuple(d) for d in step] for step in old_recording.deliveries
    ]
    replayed = replay_execution(program, make_model(model), new_recording)
    assert executions_equal(new_result, replayed)
    # and the old-format recording replays against the new code
    replayed_old = replay_execution(program, make_model(model), old_recording)
    assert executions_equal(old_result, replayed_old)


@given(seed=st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_delivery_log_matches_diff_format_random_programs(seed):
    """Same byte-format equivalence over generated programs."""
    program = random_racy_program(seed % 300, race_prob=0.3)
    policy = RandomPropagation(0.3)
    old_result, old_recording = _record_with_diff(
        program, make_model("WO"), policy, seed
    )
    new_result, new_recording = record_execution(
        program, make_model("WO"), propagation=RandomPropagation(0.3),
        seed=seed, max_steps=50_000,
    )
    assert executions_equal(old_result, new_result)
    assert new_recording.schedule == old_recording.schedule
    assert new_recording.deliveries == old_recording.deliveries


def test_recording_files_byte_identical(tmp_path):
    """The serialized artifacts agree byte for byte: a recording file
    written before this change is indistinguishable from one written
    after it."""
    program = buggy_workqueue_program()
    saw_deliveries = False
    for seed in range(6):
        old_result, old_recording = _record_with_diff(
            program, make_model("WO"), RandomPropagation(0.2), seed
        )
        _, new_recording = record_execution(
            program, make_model("WO"), propagation=RandomPropagation(0.2),
            seed=seed,
        )
        old_path = tmp_path / f"old-{seed}.json"
        new_path = tmp_path / f"new-{seed}.json"
        old_recording.save(old_path)
        new_recording.save(new_path)
        assert old_path.read_bytes() == new_path.read_bytes()
        saw_deliveries = saw_deliveries or any(
            step for step in json.loads(new_path.read_text())["deliveries"]
        )
    # the comparison must not be vacuous: at least one recording holds
    # actual voluntary deliveries
    assert saw_deliveries
