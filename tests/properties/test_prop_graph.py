"""Property-based tests of the graph substrate against brute-force
reference implementations, over hypothesis-generated random digraphs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    DiGraph,
    TransitiveClosure,
    condensation,
    find_cycle,
    is_acyclic,
    reachable_from,
    strongly_connected_components,
    topological_sort,
)


@st.composite
def digraphs(draw, max_nodes=12):
    n = draw(st.integers(min_value=0, max_value=max_nodes))
    g = DiGraph()
    g.add_nodes(range(n))
    if n:
        edges = draw(
            st.lists(
                st.tuples(
                    st.integers(0, n - 1), st.integers(0, n - 1)
                ),
                max_size=3 * n,
            )
        )
        g.add_edges(edges)
    return g


def _brute_reach(g):
    return {node: reachable_from(g, node) for node in g.nodes()}


@given(digraphs())
@settings(max_examples=150, deadline=None)
def test_transitive_closure_matches_bfs(g):
    tc = TransitiveClosure(g)
    reach = _brute_reach(g)
    for a in g.nodes():
        for b in g.nodes():
            assert tc.ordered(a, b) == (b in reach[a])


@given(digraphs())
@settings(max_examples=150, deadline=None)
def test_scc_mutual_reachability(g):
    reach = _brute_reach(g)
    comps = strongly_connected_components(g)
    # Partition property
    all_nodes = [n for c in comps for n in c]
    assert sorted(all_nodes) == sorted(g.nodes())
    # Within a component: mutual reachability (via non-empty paths when
    # the component has >1 node).
    for comp in comps:
        if len(comp) > 1:
            for a in comp:
                for b in comp:
                    assert b in reach[a]
    # Across components: never mutually reachable.
    index = {}
    for i, comp in enumerate(comps):
        for node in comp:
            index[node] = i
    for a in g.nodes():
        for b in g.nodes():
            if index[a] != index[b]:
                assert not (b in reach[a] and a in reach[b])


@given(digraphs())
@settings(max_examples=150, deadline=None)
def test_condensation_acyclic_and_consistent(g):
    c = condensation(g)
    assert is_acyclic(c.dag)
    for src, dst in g.edges():
        ci, cj = c.index_of[src], c.index_of[dst]
        if ci != cj:
            assert c.dag.has_edge(ci, cj)


@given(digraphs())
@settings(max_examples=150, deadline=None)
def test_topo_sort_iff_acyclic(g):
    cycle = find_cycle(g)
    if cycle is None:
        order = topological_sort(g)
        position = {node: i for i, node in enumerate(order)}
        for src, dst in g.edges():
            assert position[src] < position[dst]
    else:
        assert not is_acyclic(g)
        assert cycle[0] == cycle[-1]
        for a, b in zip(cycle, cycle[1:]):
            assert g.has_edge(a, b)


@given(digraphs())
@settings(max_examples=100, deadline=None)
def test_reversed_flips_reachability(g):
    r = g.reversed()
    for a in g.nodes():
        fwd = reachable_from(g, a)
        for b in fwd:
            assert a in reachable_from(r, b)
