"""Property-based tests of the detection stack over generated programs
and randomized executions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detector import PostMortemDetector
from repro.core.ophb import OpHappensBefore, find_op_races
from repro.core.scp import check_condition_34, extract_scp
from repro.machine.models import make_model
from repro.machine.propagation import (
    EagerPropagation,
    HomeDirectoryPropagation,
    RandomPropagation,
    StubbornPropagation,
)
from repro.machine.simulator import run_program
from repro.programs.random_programs import random_drf_program, random_racy_program
from repro.trace.build import build_trace

DET = PostMortemDetector()

models = st.sampled_from(["WO", "RCsc", "DRF0", "DRF1"])
seeds = st.integers(min_value=0, max_value=10_000)
# Factories, not instances: HomeDirectoryPropagation is stateful
# (arrival schedules), so each example needs a fresh policy.
propagations = st.sampled_from([
    lambda: StubbornPropagation(),
    lambda: RandomPropagation(0.2),
    lambda: RandomPropagation(0.7),
    lambda: EagerPropagation(),
    lambda: HomeDirectoryPropagation.ring(3),
])


@given(seed=seeds, model=models, prop=propagations)
@settings(max_examples=60, deadline=None)
def test_drf_programs_sc_and_race_free(seed, model, prop):
    """Condition 3.4(1) as a property: generated DRF programs never
    exhibit stale reads or data races under any weak model."""
    prog = random_drf_program(seed % 500)
    result = run_program(prog, make_model(model), seed=seed, propagation=prop())
    assert result.completed
    assert not result.stale_reads
    report = DET.analyze_execution(result)
    assert report.race_free


@given(seed=seeds, model=models, prop=propagations)
@settings(max_examples=60, deadline=None)
def test_condition_34_holds_for_racy_programs(seed, model, prop):
    prog = random_racy_program(seed % 500, race_prob=0.5)
    result = run_program(prog, make_model(model), seed=seed, propagation=prop())
    assert result.completed
    assert check_condition_34(result).ok


@given(seed=seeds, model=models)
@settings(max_examples=40, deadline=None)
def test_theorem_41_equivalence(seed, model):
    """First partitions with data races exist iff data races exist."""
    prog = random_racy_program(seed % 500, race_prob=0.4)
    result = run_program(prog, make_model(model), seed=seed)
    report = DET.analyze_execution(result)
    assert bool(report.first_partitions) == bool(report.data_races)


@given(seed=seeds, model=models, prop=propagations)
@settings(max_examples=40, deadline=None)
def test_scp_invariants(seed, model, prop):
    """SCPs are per-processor prefixes, hb1-closed, and contain no
    identity-tainted operations."""
    prog = random_racy_program(seed % 500, race_prob=0.5)
    result = run_program(prog, make_model(model), seed=seed, propagation=prop())
    hb = OpHappensBefore(result.operations)
    scp = extract_scp(result, hb)
    # prefix per processor
    for ops in result.per_proc:
        flags = [scp.contains(op) for op in ops]
        if False in flags:
            assert not any(flags[flags.index(False):])
    # hb1 closure
    for src, dst in hb.graph.edges():
        if dst in scp.included:
            assert src in scp.included


@given(seed=seeds, model=models)
@settings(max_examples=40, deadline=None)
def test_event_races_cover_op_races(seed, model):
    """Every operation-level data race maps into some event-level data
    race (the event layer may merge several, never drop one)."""
    from repro.trace.build import event_of_op
    prog = random_racy_program(seed % 500, race_prob=0.5)
    result = run_program(prog, make_model(model), seed=seed)
    trace = build_trace(result)
    report = DET.analyze(trace)
    event_pairs = {frozenset((r.a, r.b)) for r in report.data_races}
    for op_race in find_op_races(result.operations):
        if not op_race.is_data_race:
            continue
        ea = event_of_op(trace, op_race.a)
        eb = event_of_op(trace, op_race.b)
        assert ea is not None and eb is not None
        assert frozenset((ea, eb)) in event_pairs


@given(seed=seeds)
@settings(max_examples=30, deadline=None)
def test_detector_deterministic(seed):
    prog = random_racy_program(seed % 500, race_prob=0.5)
    r1 = run_program(prog, make_model("WO"), seed=seed)
    r2 = run_program(prog, make_model("WO"), seed=seed)
    assert DET.analyze_execution(r1).format() == DET.analyze_execution(r2).format()
