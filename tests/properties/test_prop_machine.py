"""Property-based tests of the machine substrate.

The memory system is checked against a brute-force reference model of
per-reader visibility; record/replay and assembler round-trips are
checked over generated programs and executions.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.memory import MemorySystem
from repro.machine.models import WeakOrdering, make_model
from repro.machine.operations import SyncRole
from repro.machine.replay import (
    executions_equal,
    record_execution,
    replay_execution,
)
from repro.machine.assembler import format_program, parse_program
from repro.machine.simulator import run_program
from repro.programs.random_programs import random_racy_program


# ----------------------------------------------------------------------
# memory-system reference model
# ----------------------------------------------------------------------

class _ReferenceMemory:
    """Obvious per-reader-visibility model: every reader keeps a full
    map; a buffered write is a (writer, addr, value, seq) record plus
    the set of readers still unaware of it."""

    def __init__(self, size, nproc, initial):
        self.nproc = nproc
        self.views = [
            {a: (initial.get(a, 0), -1) for a in range(size)}
            for _ in range(nproc)
        ]
        self.committed = {a: (initial.get(a, 0), -1) for a in range(size)}
        self.pending = []  # (writer, addr, value, seq, set(readers))

    def write_data(self, proc, addr, value, seq):
        self.committed[addr] = (value, seq)
        self.views[proc][addr] = (value, seq)
        self.pending.append(
            [proc, addr, value, seq, {q for q in range(self.nproc) if q != proc}]
        )

    def read_data(self, proc, addr):
        value, seq = self.views[proc][addr]
        stale = self.committed[addr][1] != seq
        return value, stale

    def flush(self, proc):
        drained = 0
        keep = []
        for rec in self.pending:
            if rec[0] != proc:
                keep.append(rec)
                continue
            for reader in rec[4]:
                self._apply(reader, rec[1], rec[2], rec[3])
            drained += 1
        self.pending = keep
        return drained

    def deliver(self, index, reader):
        rec = self.pending[index]
        if reader in rec[4]:
            rec[4].discard(reader)
            self._apply(reader, rec[1], rec[2], rec[3])
            if not rec[4]:
                self.pending.pop(index)

    def _apply(self, reader, addr, value, seq):
        if self.views[reader][addr][1] < seq:
            self.views[reader][addr] = (value, seq)


@st.composite
def memory_scripts(draw):
    """A sequence of memory-system actions over a small address space."""
    nproc = draw(st.integers(2, 4))
    size = draw(st.integers(1, 4))
    n = draw(st.integers(0, 40))
    actions = []
    for _ in range(n):
        kind = draw(st.sampled_from(
            ["write", "read", "flush", "deliver", "sync_write"]
        ))
        actions.append((
            kind,
            draw(st.integers(0, nproc - 1)),   # proc / reader
            draw(st.integers(0, size - 1)),    # addr
            draw(st.integers(0, 99)),          # value
            draw(st.integers(0, 7)),           # pending index selector
        ))
    return nproc, size, actions


@given(memory_scripts())
@settings(max_examples=150, deadline=None)
def test_memory_system_matches_reference(script):
    nproc, size, actions = script
    mem = MemorySystem(size, nproc, WeakOrdering(), initial={})
    ref = _ReferenceMemory(size, nproc, {})
    seq = 0
    for kind, proc, addr, value, sel in actions:
        if kind == "write":
            mem.write_data(proc, addr, value, seq, taint=False)
            ref.write_data(proc, addr, value, seq)
            seq += 1
        elif kind == "read":
            got = mem.read_data(proc, addr)
            want_value, want_stale = ref.read_data(proc, addr)
            assert got.value == want_value
            assert got.stale == want_stale
        elif kind == "flush":
            assert mem.flush(proc) == ref.flush(proc)
        elif kind == "deliver":
            pending = mem.pending_writes()
            if pending:
                index = sel % len(pending)
                pw = pending[index]
                readers = sorted(pw.remaining)
                if readers:
                    reader = readers[sel % len(readers)]
                    mem.propagate(pw, reader)
                    # mirror in the reference (match by seq)
                    for i, rec in enumerate(ref.pending):
                        if rec[3] == pw.seq:
                            ref.deliver(i, reader)
                            break
        elif kind == "sync_write":
            mem.write_sync(proc, addr, value, seq, taint=False,
                           role=SyncRole.RELEASE)
            ref.flush(proc)
            ref.committed[addr] = (value, seq)
            for reader in range(nproc):
                ref._apply(reader, addr, value, seq)
            ref.views[proc][addr] = (value, seq)
            seq += 1
    # final convergence agreement
    for p in range(nproc):
        for a in range(size):
            assert mem.view_value(p, a) == ref.views[p][a][0]


seeds = st.integers(min_value=0, max_value=2_000)


@given(seed=seeds, model=st.sampled_from(["SC", "WO", "RCsc"]))
@settings(max_examples=40, deadline=None)
def test_record_replay_roundtrip(seed, model):
    program = random_racy_program(seed % 300, race_prob=0.3)
    original, recording = record_execution(
        program, make_model(model), seed=seed
    )
    replayed = replay_execution(program, make_model(model), recording)
    assert executions_equal(original, replayed)


@given(seed=seeds)
@settings(max_examples=40, deadline=None)
def test_assembler_roundtrip_preserves_semantics(seed):
    program = random_racy_program(seed % 300, race_prob=0.4)
    reparsed = parse_program(format_program(program))
    a = run_program(program, make_model("WO"), seed=seed)
    b = run_program(reparsed, make_model("WO"), seed=seed)
    assert [
        (op.proc, op.kind, op.addr, op.value) for op in a.operations
    ] == [
        (op.proc, op.kind, op.addr, op.value) for op in b.operations
    ]


@given(seed=seeds)
@settings(max_examples=30, deadline=None)
def test_binary_trace_roundtrip(seed, tmp_path_factory):
    from repro.trace.binfile import read_binary_trace, write_binary_trace
    from repro.trace.build import build_trace
    program = random_racy_program(seed % 300, race_prob=0.4)
    result = run_program(program, make_model("WO"), seed=seed)
    trace = build_trace(result)
    path = tmp_path_factory.mktemp("bin") / "t.bin"
    write_binary_trace(trace, path)
    loaded = read_binary_trace(path)
    assert loaded.sync_order == trace.sync_order
    for pa, pb in zip(trace.events, loaded.events):
        assert [type(e).__name__ for e in pa] == [type(e).__name__ for e in pb]


# ----------------------------------------------------------------------
# TSO store buffer: FIFO drain
# ----------------------------------------------------------------------

@given(seed=seeds)
@settings(max_examples=40, deadline=None)
def test_tso_store_buffer_drains_fifo(seed):
    """TSO forbids visible write→write reordering: once a reader has
    observed some write *w* by processor *q*, every po-later read on
    that reader returns, for each address, a value at least as new (in
    coherence order = commit-seq order) as *q*'s last write to that
    address older than *w* — unless the read is forwarded from the
    reader's own store buffer."""
    program = random_racy_program(seed % 300, race_prob=0.5)
    result = run_program(program, make_model("TSO"), seed=seed)
    ops = list(result.operations)
    by_seq = {op.seq: op for op in ops}
    reads_by_proc = {}
    for op in ops:
        if op.is_read:
            reads_by_proc.setdefault(op.proc, []).append(op)
    for proc, reads in reads_by_proc.items():
        for i, first in enumerate(reads):
            if first.observed_write is None:
                continue
            w = by_seq[first.observed_write]
            if w.proc == proc:
                continue
            # q's writes that are po-older than w, newest per address
            floor = {}
            for op in ops:
                if op.proc == w.proc and op.is_write and op.seq <= w.seq:
                    floor[op.addr] = op.seq
            for later in reads[i:]:
                bound = floor.get(later.addr)
                if bound is None:
                    continue
                observed = later.observed_write
                if observed is None:
                    raise AssertionError(
                        f"read {later} sees the initial value after "
                        f"{w} (and its FIFO-older write {bound}) were "
                        f"already visible"
                    )
                if by_seq[observed].proc == proc:
                    continue  # own-buffer forwarding is allowed
                assert observed >= bound, (
                    f"write->write reordering under TSO: {later} "
                    f"observes seq {observed} although seq {bound} "
                    f"drained before the already-visible {w}"
                )


@given(seed=seeds)
@settings(max_examples=30, deadline=None)
def test_sc_executions_always_robust(seed):
    """Any SC execution of any generated program must admit an SC
    justification covering every operation."""
    from repro.core.robustness import check_robustness
    program = random_racy_program(seed % 300, race_prob=0.5)
    result = run_program(program, make_model("SC"), seed=seed)
    report = check_robustness(result)
    assert report.robust
    assert len(report.witness) == len(result.operations)
