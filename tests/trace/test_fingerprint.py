"""Canonical trace fingerprints (repro.trace.fingerprint).

The fingerprint must be stable over exactly the detector-visible trace
content: identical executions fingerprint identically (that is the
cache key contract), ground-truth fields the detector never reads must
not affect it, and any change to events, sync order, or trace header
must."""

from dataclasses import replace

from repro.machine.models import make_model
from repro.machine.simulator import run_program
from repro.programs import buggy_workqueue_program, racy_counter_program
from repro.trace import trace_fingerprint
from repro.trace.bitvector import BitVector
from repro.trace.build import Trace, build_trace
from repro.trace.events import ComputationEvent, SyncEvent


def _trace(seed=0, model="WO", build=buggy_workqueue_program):
    return build_trace(run_program(build(), make_model(model), seed=seed))


def _clone_event(e):
    if isinstance(e, SyncEvent):
        return replace(e)
    assert isinstance(e, ComputationEvent)
    return ComputationEvent(
        eid=e.eid,
        reads=BitVector.from_hex(e.reads.to_hex()),
        writes=BitVector.from_hex(e.writes.to_hex()),
        op_seqs=list(e.op_seqs),
    )


def _clone(trace: Trace) -> Trace:
    """A structural copy with fresh event objects (EventIds are
    immutable and safely shared)."""
    return Trace(
        processor_count=trace.processor_count,
        memory_size=trace.memory_size,
        events=[[_clone_event(e) for e in events] for events in trace.events],
        sync_order={a: list(o) for a, o in trace.sync_order.items()},
        symbols=trace.symbols,
        model_name=trace.model_name,
    )


def test_same_execution_same_fingerprint():
    assert trace_fingerprint(_trace(3)) == trace_fingerprint(_trace(3))


def test_different_seeds_usually_differ():
    prints = {trace_fingerprint(_trace(seed)) for seed in range(8)}
    assert len(prints) > 1


def test_different_programs_differ():
    a = trace_fingerprint(_trace(0, build=buggy_workqueue_program))
    b = trace_fingerprint(
        _trace(0, build=lambda: racy_counter_program(3, 3))
    )
    assert a != b


def test_model_name_is_part_of_the_fingerprint():
    trace = _trace(0)
    renamed = _clone(trace)
    renamed.model_name = "other-model"
    assert trace_fingerprint(trace) != trace_fingerprint(renamed)


def test_ground_truth_fields_are_excluded():
    """Operation seqs are simulator ground truth, never consumed by the
    detector; scrambling them must not change the fingerprint."""
    trace = _trace(0)
    scrambled = _clone(trace)
    for events in scrambled.events:
        for event in events:
            if event.is_sync:
                event.seq = event.seq + 1000
            else:
                event.op_seqs = [s + 1000 for s in event.op_seqs]
    assert trace_fingerprint(trace) == trace_fingerprint(scrambled)


def test_sync_value_changes_the_fingerprint():
    trace = _trace(0)
    mutated = _clone(trace)
    for events in mutated.events:
        for event in events:
            if event.is_sync:
                event.value += 7
                break
    assert trace_fingerprint(trace) != trace_fingerprint(mutated)


def test_sync_order_changes_the_fingerprint():
    trace = _trace(0)
    mutated = _clone(trace)
    for addr, order in mutated.sync_order.items():
        if len(order) >= 2:
            order[0], order[1] = order[1], order[0]
            break
    else:  # pragma: no cover - workqueue always has lock traffic
        raise AssertionError("expected a sync order with >= 2 events")
    assert trace_fingerprint(trace) != trace_fingerprint(mutated)
