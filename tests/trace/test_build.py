"""Trace building (event segmentation) tests."""

from repro.machine.models import make_model
from repro.machine.program import ProgramBuilder
from repro.machine.simulator import run_program
from repro.trace.build import build_trace, event_of_op
from repro.trace.events import ComputationEvent, SyncEvent


def _trace_of(builder_fn, model="SC", seed=0):
    b = ProgramBuilder()
    builder_fn(b)
    result = run_program(b.build(), make_model(model), seed=seed)
    return result, build_trace(result)


def test_pure_data_run_is_one_computation_event():
    def build(b):
        x, y = b.var("x"), b.var("y")
        with b.thread() as t:
            t.write(x, 1)
            t.read(y)
            t.write(y, 2)
    _, trace = _trace_of(build)
    assert trace.event_count == 1
    event = trace.events[0][0]
    assert isinstance(event, ComputationEvent)
    assert set(event.writes) == {0, 1}
    assert set(event.reads) == {1}
    assert event.op_count == 3


def test_sync_op_closes_computation_event():
    def build(b):
        x = b.var("x")
        s = b.var("s")
        with b.thread() as t:
            t.write(x, 1)
            t.unset(s)
            t.write(x, 2)
    _, trace = _trace_of(build)
    events = trace.events[0]
    assert len(events) == 3
    assert isinstance(events[0], ComputationEvent)
    assert isinstance(events[1], SyncEvent)
    assert isinstance(events[2], ComputationEvent)


def test_test_and_set_is_two_sync_events():
    def build(b):
        s = b.var("s")
        with b.thread() as t:
            t.test_and_set(s)
    _, trace = _trace_of(build)
    events = trace.events[0]
    assert len(events) == 2
    assert all(isinstance(e, SyncEvent) for e in events)


def test_sync_order_per_location():
    def build(b):
        s1 = b.var("s1")
        s2 = b.var("s2")
        with b.thread() as t:
            t.unset(s1)
            t.unset(s2)
            t.unset(s1)
    _, trace = _trace_of(build)
    assert len(trace.sync_order[0]) == 2
    assert len(trace.sync_order[1]) == 1
    # order positions recorded on the events
    for addr, order in trace.sync_order.items():
        for pos, eid in enumerate(order):
            event = trace.event(eid)
            assert event.order_pos == pos
            assert event.addr == addr


def test_event_ids_match_positions():
    def build(b):
        x = b.var("x")
        s = b.var("s")
        with b.thread() as t:
            t.write(x, 1)
            t.unset(s)
        with b.thread() as t:
            t.read(x)
    _, trace = _trace_of(build)
    for proc, events in enumerate(trace.events):
        for pos, event in enumerate(events):
            assert event.eid.proc == proc
            assert event.eid.pos == pos


def test_event_of_op_mapping():
    def build(b):
        x = b.var("x")
        s = b.var("s")
        with b.thread() as t:
            t.write(x, 1)
            t.unset(s)
    result, trace = _trace_of(build)
    for op in result.operations:
        eid = event_of_op(trace, op.seq)
        assert eid is not None
        event = trace.event(eid)
        if op.is_sync:
            assert isinstance(event, SyncEvent)
            assert event.seq == op.seq
        else:
            assert op.seq in event.op_seqs
    assert event_of_op(trace, 999) is None


def test_counts_and_accessors():
    def build(b):
        x = b.var("x")
        s = b.var("s")
        with b.thread() as t:
            t.write(x, 1)
            t.unset(s)
        with b.thread() as t:
            t.read(x)
    _, trace = _trace_of(build)
    assert trace.event_count == len(trace.all_events())
    assert len(trace.sync_events()) == 1
    assert len(trace.computation_events()) == 2


def test_interleaving_does_not_merge_across_procs():
    def build(b):
        x = b.var("x")
        with b.thread() as t:
            t.write(x, 1)
            t.write(x, 2)
        with b.thread() as t:
            t.read(x)
            t.read(x)
    _, trace = _trace_of(build, seed=3)
    # Each processor's run of data ops is one event regardless of how
    # the scheduler interleaved them.
    assert len(trace.events[0]) == 1
    assert len(trace.events[1]) == 1


def test_addr_name_and_label():
    def build(b):
        b.var("foo")
        with b.thread() as t:
            t.write("foo", 1)
    _, trace = _trace_of(build)
    assert trace.addr_name(0) == "foo"
    assert "foo" in trace.label(trace.events[0][0].eid)


def test_model_name_recorded():
    def build(b):
        x = b.var("x")
        with b.thread() as t:
            t.write(x, 1)
    _, trace = _trace_of(build, model="RCsc")
    assert trace.model_name == "RCsc"
