"""Trace validation tests."""

import pytest

from repro.machine.models import make_model
from repro.machine.operations import OperationKind, SyncRole
from repro.machine.simulator import run_program
from repro.programs.figure1 import figure1b_program
from repro.programs.workqueue import run_figure2
from repro.trace.bitvector import BitVector
from repro.trace.build import build_trace
from repro.trace.events import ComputationEvent, EventId, SyncEvent
from repro.trace.validate import (
    InvalidTraceError,
    require_valid_trace,
    validate_trace,
)


def _good_trace():
    return build_trace(run_figure2(make_model("WO")))


def test_simulator_traces_valid():
    assert validate_trace(_good_trace()) == []
    for seed in range(3):
        result = run_program(figure1b_program(), make_model("RCsc"), seed=seed)
        assert validate_trace(build_trace(result)) == []


def test_require_valid_returns_trace():
    trace = _good_trace()
    assert require_valid_trace(trace) is trace


def test_wrong_event_id_position():
    trace = _good_trace()
    event = trace.events[0][0]
    trace.events[0][0] = ComputationEvent(
        eid=EventId(0, 99), reads=event.reads, writes=event.writes,
    )
    problems = validate_trace(trace)
    assert any("carries id" in p for p in problems)


def test_out_of_range_sync_address():
    trace = _good_trace()
    trace.events[0].append(SyncEvent(
        eid=EventId(0, len(trace.events[0])),
        addr=trace.memory_size + 5,
        op_kind=OperationKind.WRITE, role=SyncRole.RELEASE,
        value=0, order_pos=0,
    ))
    problems = validate_trace(trace)
    assert any("outside memory" in p for p in problems)


def test_out_of_range_bitvector():
    trace = _good_trace()
    trace.events[0].append(ComputationEvent(
        eid=EventId(0, len(trace.events[0])),
        reads=BitVector([trace.memory_size + 1]),
    ))
    problems = validate_trace(trace)
    assert any("outside memory" in p for p in problems)


def test_empty_computation_event():
    trace = _good_trace()
    trace.events[1].append(
        ComputationEvent(eid=EventId(1, len(trace.events[1])))
    )
    problems = validate_trace(trace)
    assert any("empty computation" in p for p in problems)


def test_sync_order_wrong_position():
    trace = _good_trace()
    addr = next(iter(trace.sync_order))
    order = trace.sync_order[addr]
    if len(order) >= 2:
        order[0], order[1] = order[1], order[0]
    problems = validate_trace(trace)
    assert any("order_pos" in p for p in problems)


def test_sync_event_missing_from_order():
    trace = _good_trace()
    addr = next(iter(trace.sync_order))
    trace.sync_order[addr] = trace.sync_order[addr][:-1]
    problems = validate_trace(trace)
    assert any("missing from sync order" in p for p in problems)


def test_sync_order_references_nonexistent_event():
    trace = _good_trace()
    addr = next(iter(trace.sync_order))
    trace.sync_order[addr] = trace.sync_order[addr] + [EventId(0, 999)]
    problems = validate_trace(trace)
    assert any("not a sync event" in p for p in problems)


def test_processor_count_mismatch():
    trace = _good_trace()
    trace.processor_count += 1
    problems = validate_trace(trace)
    assert any("event streams" in p for p in problems)


def test_require_valid_raises_with_details():
    trace = _good_trace()
    trace.processor_count += 1
    with pytest.raises(InvalidTraceError, match="event streams"):
        require_valid_trace(trace)


def test_roundtripped_files_stay_valid(tmp_path):
    from repro.trace.binfile import read_binary_trace, write_binary_trace
    from repro.trace.tracefile import read_trace, write_trace
    trace = _good_trace()
    j = tmp_path / "t.jsonl"
    b = tmp_path / "t.bin"
    write_trace(trace, j)
    write_binary_trace(trace, b)
    assert validate_trace(read_trace(j)) == []
    assert validate_trace(read_binary_trace(b)) == []
