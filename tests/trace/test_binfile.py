"""Binary trace format tests."""

import pytest

from repro.core.detector import PostMortemDetector
from repro.machine.models import make_model
from repro.machine.simulator import run_program
from repro.programs.figure1 import figure1b_program
from repro.programs.workqueue import run_figure2
from repro.trace.binfile import (
    BinaryTraceError,
    read_binary_trace,
    write_binary_trace,
)
from repro.trace.build import build_trace
from repro.trace.events import ComputationEvent, SyncEvent
from repro.trace.tracefile import write_trace


@pytest.fixture
def trace():
    return build_trace(run_figure2(make_model("WO")))


def _assert_equivalent(a, b):
    assert a.processor_count == b.processor_count
    assert a.memory_size == b.memory_size
    assert a.model_name == b.model_name
    for pa, pb in zip(a.events, b.events):
        assert len(pa) == len(pb)
        for ea, eb in zip(pa, pb):
            assert type(ea) is type(eb)
            assert ea.eid == eb.eid
            if isinstance(ea, SyncEvent):
                assert (ea.addr, ea.op_kind, ea.role, ea.value,
                        ea.order_pos) == \
                       (eb.addr, eb.op_kind, eb.role, eb.value, eb.order_pos)
            else:
                assert ea.reads == eb.reads
                assert ea.writes == eb.writes
                assert ea.op_count == eb.op_count
    assert a.sync_order == b.sync_order


def test_roundtrip(trace, tmp_path):
    path = tmp_path / "t.bin"
    write_binary_trace(trace, path)
    _assert_equivalent(trace, read_binary_trace(path))


def test_roundtrip_simple(tmp_path):
    result = run_program(figure1b_program(), make_model("RCsc"), seed=4)
    trace = build_trace(result)
    path = tmp_path / "s.bin"
    write_binary_trace(trace, path)
    _assert_equivalent(trace, read_binary_trace(path))


def test_negative_values_roundtrip(tmp_path):
    from repro.machine.program import ProgramBuilder
    b = ProgramBuilder()
    f = b.var("f")
    with b.thread() as t:
        t.release_write(f, -12345)
    result = run_program(b.build(), make_model("SC"), seed=0)
    trace = build_trace(result)
    path = tmp_path / "n.bin"
    write_binary_trace(trace, path)
    loaded = read_binary_trace(path)
    assert loaded.events[0][0].value == -12345


def test_smaller_than_json(trace, tmp_path):
    bin_path = tmp_path / "t.bin"
    json_path = tmp_path / "t.jsonl"
    write_binary_trace(trace, bin_path)
    write_trace(trace, json_path)
    # The binary format drops ground-truth op seqs and packs structs;
    # it must be much smaller.
    assert bin_path.stat().st_size < json_path.stat().st_size / 2


def test_detection_identical(trace, tmp_path):
    path = tmp_path / "t.bin"
    write_binary_trace(trace, path)
    loaded = read_binary_trace(path)
    det = PostMortemDetector()
    a, b = det.analyze(trace), det.analyze(loaded)
    assert [(r.a, r.b, r.locations) for r in a.races] == \
           [(r.a, r.b, r.locations) for r in b.races]
    assert len(a.first_partitions) == len(b.first_partitions)


def test_bad_magic(tmp_path):
    path = tmp_path / "bad.bin"
    path.write_bytes(b"NOPE" + b"\x00" * 16)
    with pytest.raises(BinaryTraceError, match="magic"):
        read_binary_trace(path)


def test_truncation_detected(trace, tmp_path):
    path = tmp_path / "t.bin"
    write_binary_trace(trace, path)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(BinaryTraceError, match="truncated"):
        read_binary_trace(path)


def test_bad_version(tmp_path):
    import struct
    path = tmp_path / "v.bin"
    path.write_bytes(b"WRTR" + struct.pack("<I", 99))
    with pytest.raises(BinaryTraceError, match="version"):
        read_binary_trace(path)
