"""Torn/corrupt binary trace files must surface BinaryTraceError.

A hunt crash (or a torn filesystem write — see ``repro.faults``) can
leave a truncated or garbage-suffixed ``.bin`` trace behind.  Whatever
the damage, the reader must raise :class:`BinaryTraceError` carrying a
byte offset — never a raw ``struct.error``, ``KeyError``, or
``UnicodeDecodeError`` from the decoding internals.
"""

import random

import pytest

from repro.faults.plan import append_garbage, tear_file
from repro.machine.models import make_model
from repro.programs.workqueue import run_figure2
from repro.trace.binfile import (
    BinaryTraceError,
    _read_binary_trace,
    write_binary_trace,
)
from repro.trace.build import build_trace


@pytest.fixture
def trace_path(tmp_path):
    trace = build_trace(run_figure2(make_model("WO")))
    path = tmp_path / "t.bin"
    write_binary_trace(trace, path)
    return path


@pytest.mark.parametrize("drop_bytes", [1, 7, 64, 1024])
def test_torn_file_reports_offset(trace_path, drop_bytes):
    tear_file(trace_path, drop_bytes=drop_bytes)
    with pytest.raises(BinaryTraceError, match=r"at byte \d+"):
        _read_binary_trace(trace_path)


def test_every_truncation_point_rejected(trace_path):
    data = trace_path.read_bytes()
    for cut in range(len(data)):
        trace_path.write_bytes(data[:cut])
        with pytest.raises(BinaryTraceError):
            _read_binary_trace(trace_path)


def test_trailing_garbage_rejected(trace_path):
    append_garbage(trace_path)
    with pytest.raises(BinaryTraceError, match="trailing garbage"):
        _read_binary_trace(trace_path)


def test_byte_flips_never_leak_raw_errors(trace_path):
    """Flip single bytes all over the file: reads either succeed or
    raise BinaryTraceError — the decoding internals never leak."""
    data = trace_path.read_bytes()
    rng = random.Random(1991)
    for _ in range(300):
        index = rng.randrange(len(data))
        flipped = bytearray(data)
        flipped[index] ^= 0xFF
        trace_path.write_bytes(bytes(flipped))
        try:
            _read_binary_trace(trace_path)
        except BinaryTraceError:
            pass  # rejection is fine; any other exception fails the test
