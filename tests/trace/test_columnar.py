"""Columnar trace format tests: roundtrip fidelity, zero-copy
laziness, malformed-input rejection, and the no-numpy fallback."""

import struct
from unittest import mock

import pytest

from repro.machine.models import make_model
from repro.machine.program import ProgramBuilder
from repro.machine.simulator import run_program
from repro.programs.figure1 import figure1b_program
from repro.programs.workqueue import run_figure2
from repro.trace import columnar as columnar_mod
from repro.trace.build import Trace, build_trace
from repro.trace.columnar import (
    ColumnarTrace,
    ColumnarTraceError,
    from_columnar,
    open_columnar,
    to_columnar,
)
from repro.trace.events import SyncEvent


@pytest.fixture
def trace():
    return build_trace(run_figure2(make_model("WO")))


def _assert_equivalent(a, b):
    assert a.processor_count == b.processor_count
    assert a.memory_size == b.memory_size
    assert a.model_name == b.model_name
    assert a.event_count == b.event_count
    for pa, pb in zip(a.events, b.events):
        assert len(pa) == len(pb)
        for ea, eb in zip(pa, pb):
            assert type(ea) is type(eb)
            assert ea.eid == eb.eid
            if isinstance(ea, SyncEvent):
                assert (ea.addr, ea.op_kind, ea.role, ea.value,
                        ea.order_pos) == \
                       (eb.addr, eb.op_kind, eb.role, eb.value, eb.order_pos)
            else:
                assert ea.reads == eb.reads
                assert ea.writes == eb.writes
                assert ea.op_count == eb.op_count
    assert a.sync_order == b.sync_order


def test_roundtrip_materialized(trace, tmp_path):
    path = tmp_path / "t.wrct"
    to_columnar(trace, path)
    _assert_equivalent(trace, from_columnar(path))


def test_roundtrip_lazy(trace, tmp_path):
    path = tmp_path / "t.wrct"
    to_columnar(trace, path)
    with open_columnar(path) as lazy:
        assert isinstance(lazy, ColumnarTrace)
        assert isinstance(lazy, Trace)
        _assert_equivalent(trace, lazy)


def test_roundtrip_simple(tmp_path):
    result = run_program(figure1b_program(), make_model("RCsc"), seed=4)
    trace = build_trace(result)
    path = tmp_path / "s.wrct"
    to_columnar(trace, path)
    _assert_equivalent(trace, from_columnar(path))


def test_negative_values_roundtrip(tmp_path):
    b = ProgramBuilder()
    f = b.var("f")
    with b.thread() as t:
        t.release_write(f, -12345)
    trace = build_trace(run_program(b.build(), make_model("SC"), seed=0))
    path = tmp_path / "n.wrct"
    to_columnar(trace, path)
    with open_columnar(path) as lazy:
        assert lazy.events[0][0].value == -12345
        assert int(lazy.columns.value[0]) == -12345


def test_columns_expose_raw_arrays(trace, tmp_path):
    path = tmp_path / "t.wrct"
    to_columnar(trace, path)
    with open_columnar(path) as lazy:
        cols = lazy.columns
        assert cols.event_total == trace.event_count
        assert sum(cols.proc_counts) == trace.event_count
        # columns agree with the materialized objects, row by row
        for proc, proc_events in enumerate(trace.events):
            for pos, event in enumerate(proc_events):
                row = cols.row_of(proc, pos)
                assert int(cols.proc[row]) == proc
                assert int(cols.pos[row]) == pos
                if isinstance(event, SyncEvent):
                    assert not cols.is_comp(row)
                    assert int(cols.addr[row]) == event.addr
                else:
                    assert cols.is_comp(row)
                    assert sorted(cols.event_reads(row)) == \
                        sorted(event.reads)
                    assert sorted(cols.event_writes(row)) == \
                        sorted(event.writes)


def test_event_view_is_lazy_and_cached(trace, tmp_path):
    path = tmp_path / "t.wrct"
    to_columnar(trace, path)
    with open_columnar(path) as lazy:
        first = lazy.events[0][0]
        assert lazy.events[0][0] is first  # cached, not rebuilt
        assert len(lazy.events) == trace.processor_count
        assert lazy.events[0][-1].eid == trace.events[0][-1].eid


def test_smaller_than_json(trace, tmp_path):
    from repro.trace.tracefile import write_trace
    col_path = tmp_path / "t.wrct"
    json_path = tmp_path / "t.jsonl"
    to_columnar(trace, col_path)
    write_trace(trace, json_path)
    assert col_path.stat().st_size < json_path.stat().st_size / 2


def test_no_numpy_fallback(trace, tmp_path):
    path = tmp_path / "t.wrct"
    to_columnar(trace, path)
    with mock.patch.object(columnar_mod, "_np", None):
        with open_columnar(path) as lazy:
            _assert_equivalent(trace, lazy)


# ----------------------------------------------------------------------
# malformed inputs
# ----------------------------------------------------------------------

def test_bad_magic(tmp_path):
    path = tmp_path / "bad.wrct"
    path.write_bytes(b"NOPE" + b"\x00" * 16)
    with pytest.raises(ColumnarTraceError, match="magic"):
        open_columnar(path)


def test_empty_file(tmp_path):
    path = tmp_path / "empty.wrct"
    path.write_bytes(b"")
    with pytest.raises(ColumnarTraceError, match="magic"):
        open_columnar(path)


def test_bad_version(tmp_path):
    path = tmp_path / "v.wrct"
    path.write_bytes(b"WRCT" + struct.pack("<III", 99, 1, 1))
    with pytest.raises(ColumnarTraceError, match="format"):
        open_columnar(path)


def test_count_mismatch_detected(trace, tmp_path):
    path = tmp_path / "t.wrct"
    to_columnar(trace, path)
    data = bytearray(path.read_bytes())
    # header: magic(4) + version/nproc/memsize(12) + name_len(4) + name
    (name_len,) = struct.unpack_from("<I", data, 16)
    total_off = 20 + name_len
    struct.pack_into("<I", data, total_off, 10_000)
    path.write_bytes(bytes(data))
    with pytest.raises(ColumnarTraceError, match="count"):
        open_columnar(path)


def test_every_truncation_point_rejected(tmp_path):
    # a small trace keeps the exhaustive byte-by-byte sweep fast
    small = build_trace(run_program(figure1b_program(), make_model("WO"),
                                    seed=0))
    path = tmp_path / "t.wrct"
    to_columnar(small, path)
    data = path.read_bytes()
    torn = tmp_path / "torn.wrct"
    for cut in range(len(data)):
        torn.write_bytes(data[:cut])
        with pytest.raises(ColumnarTraceError):
            open_columnar(torn)


def test_trailing_garbage_rejected(trace, tmp_path):
    from repro.faults.plan import append_garbage
    path = tmp_path / "t.wrct"
    to_columnar(trace, path)
    append_garbage(path)
    with pytest.raises(ColumnarTraceError, match="trailing garbage"):
        open_columnar(path)
