"""Trace-file serialization tests."""

import json

import pytest

from repro.machine.models import make_model
from repro.machine.simulator import run_program
from repro.programs.figure1 import figure1b_program
from repro.programs.workqueue import run_figure2
from repro.trace.build import build_trace
from repro.trace.events import ComputationEvent, SyncEvent
from repro.trace.tracefile import TraceFormatError, read_trace, write_trace


@pytest.fixture
def trace():
    result = run_program(figure1b_program(), make_model("WO"), seed=2)
    return build_trace(result)


def _assert_traces_equal(a, b):
    assert a.processor_count == b.processor_count
    assert a.memory_size == b.memory_size
    assert a.model_name == b.model_name
    assert len(a.events) == len(b.events)
    for pa, pb in zip(a.events, b.events):
        assert len(pa) == len(pb)
        for ea, eb in zip(pa, pb):
            assert type(ea) is type(eb)
            assert ea.eid == eb.eid
            if isinstance(ea, SyncEvent):
                assert (ea.addr, ea.op_kind, ea.role, ea.value, ea.order_pos) == \
                       (eb.addr, eb.op_kind, eb.role, eb.value, eb.order_pos)
            else:
                assert ea.reads == eb.reads
                assert ea.writes == eb.writes
                assert ea.op_seqs == eb.op_seqs
    assert a.sync_order == b.sync_order


def test_roundtrip(trace, tmp_path):
    path = tmp_path / "t.trace"
    write_trace(trace, path)
    _assert_traces_equal(trace, read_trace(path))


def test_roundtrip_figure2(tmp_path):
    trace = build_trace(run_figure2(make_model("WO")))
    path = tmp_path / "f2.trace"
    write_trace(trace, path)
    _assert_traces_equal(trace, read_trace(path))


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.trace"
    path.write_text("")
    with pytest.raises(TraceFormatError):
        read_trace(path)


def test_bad_version_rejected(tmp_path, trace):
    path = tmp_path / "bad.trace"
    write_trace(trace, path)
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    header["format"] = 99
    lines[0] = json.dumps(header)
    path.write_text("\n".join(lines))
    with pytest.raises(TraceFormatError):
        read_trace(path)


def test_out_of_order_event_rejected(tmp_path, trace):
    path = tmp_path / "ooo.trace"
    write_trace(trace, path)
    lines = path.read_text().splitlines()
    # Find two event lines of the same processor and swap them.
    event_lines = [
        (i, json.loads(line)) for i, line in enumerate(lines[1:], start=1)
        if json.loads(line).get("t") in ("sync", "comp")
    ]
    same_proc = {}
    swap = None
    for i, record in event_lines:
        key = record["proc"]
        if key in same_proc:
            swap = (same_proc[key], i)
            break
        same_proc[key] = i
    assert swap is not None
    a, b = swap
    lines[a], lines[b] = lines[b], lines[a]
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(TraceFormatError):
        read_trace(path)


def test_unknown_record_type_rejected(tmp_path, trace):
    path = tmp_path / "unk.trace"
    write_trace(trace, path)
    with path.open("a") as fh:
        fh.write(json.dumps({"t": "mystery", "proc": 0, "pos": 99}) + "\n")
    with pytest.raises(TraceFormatError):
        read_trace(path)


def test_detection_identical_from_file(tmp_path):
    """The detector must produce the same verdict from a reloaded trace
    as from the in-memory one (symbols aside)."""
    from repro.core.detector import PostMortemDetector
    trace = build_trace(run_figure2(make_model("WO")))
    path = tmp_path / "f2.trace"
    write_trace(trace, path)
    loaded = read_trace(path)
    det = PostMortemDetector()
    r1, r2 = det.analyze(trace), det.analyze(loaded)
    assert [(r.a, r.b, r.locations) for r in r1.races] == \
           [(r.a, r.b, r.locations) for r in r2.races]
    assert len(r1.first_partitions) == len(r2.first_partitions)


def test_accepts_str_and_path(trace, tmp_path):
    path = tmp_path / "p.trace"
    write_trace(trace, str(path))
    read_trace(str(path))
