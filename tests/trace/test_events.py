"""Event model tests: conflicts and data-involvement rules."""

from repro.machine.operations import OperationKind, SyncRole
from repro.trace.bitvector import BitVector
from repro.trace.events import (
    ComputationEvent,
    EventId,
    SyncEvent,
    conflicting_locations,
    involves_data,
)


def comp(proc, pos, reads=(), writes=()):
    return ComputationEvent(
        eid=EventId(proc, pos),
        reads=BitVector(reads),
        writes=BitVector(writes),
    )


def sync(proc, pos, addr, kind=OperationKind.WRITE, role=SyncRole.RELEASE, value=0):
    return SyncEvent(
        eid=EventId(proc, pos), addr=addr, op_kind=kind, role=role, value=value
    )


class TestEventId:
    def test_ordering(self):
        assert EventId(0, 1) < EventId(0, 2)
        assert EventId(0, 9) < EventId(1, 0)

    def test_repr(self):
        assert repr(EventId(2, 3)) == "P2.E3"

    def test_hashable(self):
        assert EventId(1, 1) in {EventId(1, 1)}


class TestComputationEvent:
    def test_record_accumulates(self):
        e = comp(0, 0)
        e.record(OperationKind.READ, 3, seq=0)
        e.record(OperationKind.WRITE, 5, seq=1)
        e.record(OperationKind.READ, 3, seq=2)
        assert list(e.reads) == [3]
        assert list(e.writes) == [5]
        assert e.op_count == 3
        assert e.op_seqs == [0, 1, 2]

    def test_accessed_union(self):
        e = comp(0, 0, reads=[1], writes=[2])
        assert set(e.accessed) == {1, 2}

    def test_kind_flags(self):
        assert comp(0, 0).is_computation
        assert not comp(0, 0).is_sync


class TestConflicts:
    def test_comp_comp_write_write(self):
        assert conflicting_locations(comp(0, 0, writes=[4]),
                                     comp(1, 0, writes=[4])) == [4]

    def test_comp_comp_write_read(self):
        assert conflicting_locations(comp(0, 0, writes=[4]),
                                     comp(1, 0, reads=[4])) == [4]

    def test_comp_comp_read_read_no_conflict(self):
        assert conflicting_locations(comp(0, 0, reads=[4]),
                                     comp(1, 0, reads=[4])) == []

    def test_comp_comp_disjoint(self):
        assert conflicting_locations(comp(0, 0, writes=[1]),
                                     comp(1, 0, writes=[2])) == []

    def test_multiple_locations_sorted(self):
        a = comp(0, 0, writes=[5, 2])
        b = comp(1, 0, reads=[2], writes=[5])
        assert conflicting_locations(a, b) == [2, 5]

    def test_sync_write_vs_comp_read(self):
        s = sync(0, 0, addr=7, kind=OperationKind.WRITE)
        assert conflicting_locations(s, comp(1, 0, reads=[7])) == [7]
        assert conflicting_locations(comp(1, 0, reads=[7]), s) == [7]

    def test_sync_read_vs_comp_read_no_conflict(self):
        s = sync(0, 0, addr=7, kind=OperationKind.READ, role=SyncRole.ACQUIRE)
        assert conflicting_locations(s, comp(1, 0, reads=[7])) == []

    def test_sync_read_vs_comp_write(self):
        s = sync(0, 0, addr=7, kind=OperationKind.READ, role=SyncRole.ACQUIRE)
        assert conflicting_locations(s, comp(1, 0, writes=[7])) == [7]

    def test_sync_sync_same_addr(self):
        a = sync(0, 0, addr=3)
        b = sync(1, 0, addr=3)
        assert conflicting_locations(a, b) == [3]

    def test_sync_sync_reads_no_conflict(self):
        a = sync(0, 0, addr=3, kind=OperationKind.READ, role=SyncRole.ACQUIRE)
        b = sync(1, 0, addr=3, kind=OperationKind.READ, role=SyncRole.ACQUIRE)
        assert conflicting_locations(a, b) == []

    def test_sync_sync_different_addr(self):
        assert conflicting_locations(sync(0, 0, addr=3), sync(1, 0, addr=4)) == []


class TestInvolvesData:
    def test_comp_pairs_are_data(self):
        assert involves_data(comp(0, 0), comp(1, 0))
        assert involves_data(sync(0, 0, 1), comp(1, 0))
        assert involves_data(comp(0, 0), sync(1, 0, 1))

    def test_sync_sync_not_data(self):
        assert not involves_data(sync(0, 0, 1), sync(1, 0, 1))


class TestLabels:
    def test_sync_label(self):
        s = sync(0, 0, addr=3, value=0)
        assert "Release" in s.label("s")
        assert "s" in s.label("s")

    def test_comp_label(self):
        e = comp(0, 0, reads=[1], writes=[2])
        text = e.label(lambda a: f"v{a}")
        assert "v1" in text and "v2" in text
