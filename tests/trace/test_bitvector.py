"""BitVector unit and property tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trace.bitvector import BitVector

small_sets = st.sets(st.integers(min_value=0, max_value=200), max_size=30)


def test_empty():
    bv = BitVector()
    assert not bv
    assert len(bv) == 0
    assert list(bv) == []
    assert 5 not in bv


def test_set_test_clear():
    bv = BitVector()
    bv.set(3)
    assert bv.test(3)
    assert 3 in bv
    bv.clear(3)
    assert not bv.test(3)


def test_negative_index_rejected():
    with pytest.raises(ValueError):
        BitVector().set(-1)


def test_constructor_from_iterable():
    bv = BitVector([1, 5, 9])
    assert list(bv) == [1, 5, 9]
    assert len(bv) == 3


def test_union_intersection():
    a = BitVector([1, 2, 3])
    b = BitVector([3, 4])
    assert list(a.union(b)) == [1, 2, 3, 4]
    assert list(a.intersection(b)) == [3]
    assert a.intersects(b)
    assert not a.intersects(BitVector([9]))


def test_equality_and_hash():
    assert BitVector([1, 2]) == BitVector([2, 1])
    assert hash(BitVector([7])) == hash(BitVector([7]))
    assert BitVector([1]) != BitVector([2])


def test_copy_independent():
    a = BitVector([1])
    b = a.copy()
    b.set(2)
    assert 2 not in a


def test_hex_roundtrip():
    a = BitVector([0, 63, 64, 199])
    assert BitVector.from_hex(a.to_hex()) == a
    assert BitVector.from_hex("") == BitVector()


def test_repr_truncates():
    text = repr(BitVector(range(20)))
    assert "..." in text


@given(small_sets, small_sets)
def test_union_matches_set_union(xs, ys):
    assert set(BitVector(xs).union(BitVector(ys))) == xs | ys


@given(small_sets, small_sets)
def test_intersection_matches_set_intersection(xs, ys):
    a, b = BitVector(xs), BitVector(ys)
    assert set(a.intersection(b)) == xs & ys
    assert a.intersects(b) == bool(xs & ys)


@given(small_sets)
def test_len_is_cardinality(xs):
    assert len(BitVector(xs)) == len(xs)


@given(small_sets)
def test_iteration_sorted(xs):
    assert list(BitVector(xs)) == sorted(xs)


@given(small_sets)
def test_hex_roundtrip_property(xs):
    bv = BitVector(xs)
    assert BitVector.from_hex(bv.to_hex()) == bv
