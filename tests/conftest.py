"""Shared fixtures: canonical programs, executions and analysis objects."""

from __future__ import annotations

import pytest

from repro.core.detector import PostMortemDetector
from repro.machine.models import make_model
from repro.machine.propagation import StubbornPropagation
from repro.machine.simulator import run_program
from repro.programs.figure1 import figure1a_program, figure1b_program
from repro.programs.workqueue import run_figure2
from repro.trace.build import build_trace


@pytest.fixture(scope="session")
def detector():
    return PostMortemDetector()


@pytest.fixture(scope="session")
def fig1a_sc_result():
    """Figure 1a executed under SC (data races on x and y)."""
    return run_program(figure1a_program(), make_model("SC"), seed=1)


@pytest.fixture(scope="session")
def fig1b_wo_result():
    """Figure 1b executed under WO with stubborn propagation
    (data-race-free, must still be sequentially consistent)."""
    return run_program(
        figure1b_program(),
        make_model("WO"),
        seed=1,
        propagation=StubbornPropagation(),
    )


@pytest.fixture(scope="session")
def figure2_result():
    """The deterministic Figure 2b weak execution (WO)."""
    return run_figure2(make_model("WO"))


@pytest.fixture(scope="session")
def figure2_trace(figure2_result):
    return build_trace(figure2_result)


@pytest.fixture(scope="session")
def figure2_report(figure2_result, detector):
    return detector.analyze_execution(figure2_result)
