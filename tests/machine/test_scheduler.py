"""Scheduler tests."""

import random

import pytest

from repro.machine.scheduler import (
    BurstScheduler,
    RandomScheduler,
    RoundRobin,
    ScriptedScheduler,
)


def test_round_robin_cycles():
    s = RoundRobin()
    rng = random.Random(0)
    picks = [s.pick([0, 1, 2], rng) for _ in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]


def test_round_robin_skips_halted():
    s = RoundRobin()
    rng = random.Random(0)
    assert s.pick([0, 1, 2], rng) == 0
    assert s.pick([0, 2], rng) == 2
    assert s.pick([0, 2], rng) == 0


def test_random_scheduler_uses_rng_deterministically():
    picks1 = [RandomScheduler().pick([0, 1, 2], random.Random(42)) for _ in range(1)]
    picks2 = [RandomScheduler().pick([0, 1, 2], random.Random(42)) for _ in range(1)]
    assert picks1 == picks2


def test_random_scheduler_fair_ish():
    s = RandomScheduler()
    rng = random.Random(7)
    picks = [s.pick([0, 1], rng) for _ in range(200)]
    assert 50 < sum(picks) < 150


def test_burst_scheduler_runs_bursts():
    s = BurstScheduler(min_burst=3, max_burst=3)
    rng = random.Random(0)
    picks = [s.pick([0, 1], rng) for _ in range(6)]
    assert picks[0] == picks[1] == picks[2]
    assert picks[3] == picks[4] == picks[5]


def test_burst_scheduler_switches_when_current_halts():
    s = BurstScheduler(min_burst=5, max_burst=5)
    rng = random.Random(0)
    first = s.pick([0, 1], rng)
    other = 1 - first
    assert s.pick([other], rng) == other


def test_burst_validation():
    with pytest.raises(ValueError):
        BurstScheduler(min_burst=0, max_burst=2)
    with pytest.raises(ValueError):
        BurstScheduler(min_burst=3, max_burst=2)


def test_scripted_replays_then_round_robin():
    s = ScriptedScheduler([2, 2, 0])
    rng = random.Random(0)
    assert s.pick([0, 1, 2], rng) == 2
    assert s.pick([0, 1, 2], rng) == 2
    assert s.pick([0, 1, 2], rng) == 0
    # script exhausted -> fresh round robin over runnable
    assert s.pick([0, 1, 2], rng) == 0
    assert s.pick([0, 1, 2], rng) == 1


def test_scripted_skips_halted_entries():
    s = ScriptedScheduler([1, 0])
    rng = random.Random(0)
    assert s.pick([0, 2], rng) == 0  # pid 1 not runnable, skipped
