"""MemorySystem unit tests: views, pending writes, staleness, flushes."""

import pytest

from repro.machine.memory import MemorySystem
from repro.machine.models import SequentialConsistency, WeakOrdering
from repro.machine.operations import SyncRole


def _weak(size=4, procs=3, initial=None):
    return MemorySystem(size, procs, WeakOrdering(), initial=initial)


def _sc(size=4, procs=3, initial=None):
    return MemorySystem(size, procs, SequentialConsistency(), initial=initial)


class TestInitialState:
    def test_reads_return_initial_values(self):
        m = _weak(initial={1: 42})
        res = m.read_data(0, 1)
        assert res.value == 42
        assert res.observed_write is None
        assert not res.stale

    def test_default_zero(self):
        m = _weak()
        assert m.read_data(2, 3).value == 0

    def test_views_converged_initially(self):
        assert _weak().views_converged()


class TestDataWrites:
    def test_own_view_updates_immediately(self):
        m = _weak()
        m.write_data(0, 2, 99, seq=0, taint=False)
        assert m.read_data(0, 2).value == 99
        assert not m.read_data(0, 2).stale

    def test_other_view_stale_until_propagated(self):
        m = _weak()
        m.write_data(0, 2, 99, seq=0, taint=False)
        res = m.read_data(1, 2)
        assert res.value == 0
        assert res.stale

    def test_sc_propagates_at_issue(self):
        m = _sc()
        m.write_data(0, 2, 99, seq=0, taint=False)
        res = m.read_data(1, 2)
        assert res.value == 99
        assert not res.stale

    def test_flush_delivers_everywhere(self):
        m = _weak()
        m.write_data(0, 1, 7, seq=0, taint=False)
        m.write_data(0, 2, 8, seq=1, taint=False)
        drained = m.flush(0)
        assert drained == 2
        for reader in (1, 2):
            assert m.read_data(reader, 1).value == 7
            assert m.read_data(reader, 2).value == 8
        assert m.views_converged()

    def test_flush_only_own_writes(self):
        m = _weak()
        m.write_data(0, 1, 7, seq=0, taint=False)
        m.write_data(1, 2, 8, seq=1, taint=False)
        assert m.flush(0) == 1
        assert m.read_data(2, 2).stale

    def test_propagate_single_reader(self):
        m = _weak()
        m.write_data(0, 1, 7, seq=0, taint=False)
        pw = m.pending_writes()[0]
        m.propagate(pw, 1)
        assert m.read_data(1, 1).value == 7
        assert m.read_data(2, 1).stale

    def test_view_never_moves_backward(self):
        m = _weak()
        m.write_data(0, 1, 7, seq=0, taint=False)
        m.write_data(0, 1, 9, seq=5, taint=False)
        newer, older = None, None
        for pw in m.pending_writes():
            if pw.seq == 5:
                newer = pw
            else:
                older = pw
        m.propagate(newer, 1)
        assert m.read_data(1, 1).value == 9
        m.propagate(older, 1)
        assert m.read_data(1, 1).value == 9  # old write must not regress

    def test_pending_count(self):
        m = _weak()
        m.write_data(0, 1, 1, seq=0, taint=False)
        m.write_data(0, 2, 2, seq=1, taint=False)
        m.write_data(1, 3, 3, seq=2, taint=False)
        assert m.pending_count() == 3
        assert m.pending_count(0) == 2
        assert m.pending_count(1) == 1


class TestSyncOperations:
    def test_sync_write_propagates_at_issue(self):
        m = _weak()
        m.write_sync(0, 1, 5, seq=0, taint=False, role=SyncRole.RELEASE)
        assert m.read_data(1, 1).value == 5
        assert not m.read_data(1, 1).stale

    def test_release_flushes_buffered_writes(self):
        m = _weak()
        m.write_data(0, 1, 7, seq=0, taint=False)
        flushed = m.write_sync(0, 2, 0, seq=1, taint=False, role=SyncRole.RELEASE)
        assert flushed == 1
        assert m.read_data(1, 1).value == 7

    def test_sync_read_sees_committed(self):
        m = _weak()
        m.write_data(0, 1, 7, seq=0, taint=False)
        res = m.read_sync(1, 1)
        assert res.value == 7
        assert not res.stale
        # and refreshes the reader's data view
        assert m.read_data(1, 1).value == 7

    def test_pre_sync_read_flush_respects_model(self):
        wo = _weak()
        wo.write_data(0, 1, 7, seq=0, taint=False)
        assert wo.pre_sync_read_flush(0, SyncRole.ACQUIRE) == 1

        from repro.machine.models import ReleaseConsistencySC
        rc = MemorySystem(4, 3, ReleaseConsistencySC())
        rc.write_data(0, 1, 7, seq=0, taint=False)
        assert rc.pre_sync_read_flush(0, SyncRole.ACQUIRE) == 0
        assert rc.pending_count(0) == 1


class TestStaleness:
    def test_stale_exactly_when_unpropagated_newer_write(self):
        m = _weak()
        assert not m.read_data(1, 0).stale
        m.write_data(0, 0, 1, seq=0, taint=False)
        assert m.read_data(1, 0).stale
        m.flush(0)
        assert not m.read_data(1, 0).stale

    def test_taint_travels_with_write(self):
        m = _weak()
        m.write_data(0, 0, 1, seq=0, taint=True)
        m.flush(0)
        res = m.read_data(1, 0)
        assert res.taint
        assert not res.stale

    def test_stale_read_is_tainted(self):
        m = _weak()
        m.write_data(0, 0, 1, seq=0, taint=False)
        assert m.read_data(1, 0).taint  # stale implies tainted


class TestBounds:
    def test_address_out_of_range(self):
        m = _weak(size=2)
        with pytest.raises(IndexError):
            m.read_data(0, 2)
        with pytest.raises(IndexError):
            m.write_data(0, -1, 0, seq=0, taint=False)

    def test_processor_out_of_range(self):
        m = _weak(procs=2)
        with pytest.raises(IndexError):
            m.read_data(2, 0)

    def test_committed_memory_snapshot(self):
        m = _weak()
        m.write_data(0, 1, 7, seq=0, taint=False)
        snap = m.committed_memory()
        assert snap[1] == 7
        assert snap[0] == 0
