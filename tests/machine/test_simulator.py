"""Simulator-level tests: determinism, completion, results plumbing."""

import pytest

from repro.machine.models import make_model
from repro.machine.program import ProgramBuilder
from repro.machine.propagation import StubbornPropagation
from repro.machine.scheduler import RoundRobin
from repro.machine.simulator import Simulator, run_program
from repro.programs.figure1 import figure1a_program, figure1b_program
from repro.programs.kernels import locked_counter_program


def test_same_seed_same_execution():
    prog = locked_counter_program(3, 3)
    a = run_program(prog, make_model("WO"), seed=42)
    b = run_program(prog, make_model("WO"), seed=42)
    assert [op.seq for op in a.operations] == [op.seq for op in b.operations]
    assert [(op.proc, op.addr, op.value) for op in a.operations] == \
           [(op.proc, op.addr, op.value) for op in b.operations]
    assert a.final_memory == b.final_memory


def test_different_seeds_can_differ():
    prog = locked_counter_program(3, 3)
    runs = {
        tuple((op.proc, op.addr) for op in
              run_program(prog, make_model("WO"), seed=s).operations)
        for s in range(8)
    }
    assert len(runs) > 1


def test_completion_flag():
    res = run_program(figure1a_program(), make_model("SC"), seed=0)
    assert res.completed
    assert res.steps > 0


def test_max_steps_bound():
    b = ProgramBuilder()
    s = b.var("s", initial=1)  # never released
    with b.thread() as t:
        t.lock(s)  # spins forever
    res = run_program(b.build(), make_model("SC"), seed=0, max_steps=50)
    assert not res.completed
    assert res.steps == 50


def test_per_proc_streams_ordered():
    res = run_program(figure1b_program(), make_model("WO"), seed=3)
    for ops in res.per_proc:
        locals_ = [op.local_index for op in ops]
        assert locals_ == sorted(locals_)
        assert locals_ == list(range(len(ops)))


def test_global_seq_strictly_increasing():
    res = run_program(figure1b_program(), make_model("WO"), seed=3)
    seqs = [op.seq for op in res.operations]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)


def test_value_of_requires_symbols():
    res = run_program(figure1a_program(), make_model("SC"), seed=0)
    assert res.value_of("x") == 1


def test_addr_name_rendering():
    res = run_program(figure1a_program(), make_model("SC"), seed=0)
    names = {res.addr_name(op.addr) for op in res.operations}
    assert names == {"x", "y"}


def test_describe_op():
    res = run_program(figure1a_program(), make_model("SC"), seed=0)
    text = res.describe_op(res.operations[0])
    assert text.startswith("P")
    assert "(" in text


def test_op_by_seq():
    res = run_program(figure1a_program(), make_model("SC"), seed=0)
    for op in res.operations:
        assert res.op_by_seq(op.seq) is op
    with pytest.raises(KeyError):
        res.op_by_seq(10_000)


def test_sc_executions_never_stale():
    for seed in range(10):
        res = run_program(figure1a_program(), make_model("SC"), seed=seed)
        assert res.stale_reads == []


def test_weak_stubborn_exposes_staleness():
    # Round-robin + stubborn: P0's write buffers, P1 reads stale.
    res = run_program(
        figure1a_program(),
        make_model("WO"),
        scheduler=RoundRobin(),
        propagation=StubbornPropagation(),
        seed=0,
    )
    assert len(res.stale_reads) >= 1


def test_data_and_sync_partition():
    res = run_program(figure1b_program(), make_model("WO"), seed=1)
    data = res.data_operations()
    sync = res.sync_operations()
    assert len(data) + len(sync) == len(res.operations)
    assert all(op.is_data for op in data)
    assert all(op.is_sync for op in sync)


def test_simulator_reusable_program():
    prog = figure1a_program()
    r1 = Simulator(prog, make_model("SC"), seed=0).run()
    r2 = Simulator(prog, make_model("SC"), seed=0).run()
    assert [op.value for op in r1.operations] == [op.value for op in r2.operations]


def test_registers_snapshot():
    b = ProgramBuilder()
    out = b.var("out", initial=9)
    with b.thread() as t:
        t.read(out, dst=t.reg("result"))
    res = run_program(b.build(), make_model("SC"), seed=0)
    assert res.registers[0]["result"] == 9
