"""Instruction validation tests."""

import pytest

from repro.machine.isa import (
    Addr,
    IllegalInstruction,
    Imm,
    Instruction,
    Opcode,
    Reg,
)


def test_read_well_formed():
    i = Instruction(Opcode.READ, dst=Reg("r"), addr=Addr(3))
    assert i.opcode is Opcode.READ
    assert i.addr.base == 3


def test_read_requires_addr():
    with pytest.raises(IllegalInstruction):
        Instruction(Opcode.READ, dst=Reg("r"))


def test_read_requires_dst():
    with pytest.raises(IllegalInstruction):
        Instruction(Opcode.READ, addr=Addr(0))


def test_write_requires_one_source():
    Instruction(Opcode.WRITE, src=(Imm(5),), addr=Addr(0))
    with pytest.raises(IllegalInstruction):
        Instruction(Opcode.WRITE, src=(), addr=Addr(0))
    with pytest.raises(IllegalInstruction):
        Instruction(Opcode.WRITE, src=(Imm(1), Imm(2)), addr=Addr(0))


def test_write_takes_no_dst():
    with pytest.raises(IllegalInstruction):
        Instruction(Opcode.WRITE, dst=Reg("r"), src=(Imm(1),), addr=Addr(0))


def test_alu_arity():
    Instruction(Opcode.ADD, dst=Reg("d"), src=(Imm(1), Reg("a")))
    with pytest.raises(IllegalInstruction):
        Instruction(Opcode.ADD, dst=Reg("d"), src=(Imm(1),))


def test_mov_single_source():
    Instruction(Opcode.MOV, dst=Reg("d"), src=(Imm(7),))


def test_branch_requires_label():
    Instruction(Opcode.BZ, src=(Reg("c"),), label="loop")
    with pytest.raises(IllegalInstruction):
        Instruction(Opcode.BZ, src=(Reg("c"),))


def test_jump_requires_label():
    with pytest.raises(IllegalInstruction):
        Instruction(Opcode.JMP)


def test_non_branch_rejects_label():
    with pytest.raises(IllegalInstruction):
        Instruction(Opcode.NOP, label="x")


def test_non_memory_rejects_addr():
    with pytest.raises(IllegalInstruction):
        Instruction(Opcode.ADD, dst=Reg("d"), src=(Imm(1), Imm(2)), addr=Addr(0))


def test_unset_shape():
    Instruction(Opcode.UNSET, addr=Addr(1))
    with pytest.raises(IllegalInstruction):
        Instruction(Opcode.UNSET, dst=Reg("r"), addr=Addr(1))


def test_test_and_set_shape():
    Instruction(Opcode.TEST_AND_SET, dst=Reg("old"), addr=Addr(2))
    with pytest.raises(IllegalInstruction):
        Instruction(Opcode.TEST_AND_SET, addr=Addr(2))


def test_fence_takes_nothing():
    Instruction(Opcode.FENCE)
    with pytest.raises(IllegalInstruction):
        Instruction(Opcode.FENCE, addr=Addr(0))


def test_addr_with_register_index_repr():
    a = Addr(10, index=Reg("i"))
    assert "10" in repr(a)
    assert "i" in repr(a)


def test_instruction_repr_roundtrippable_parts():
    i = Instruction(Opcode.BZ, src=(Reg("c"),), label="top")
    text = repr(i)
    assert "bz" in text and "%c" in text and "@top" in text


def test_instructions_hashable_and_frozen():
    i = Instruction(Opcode.NOP)
    with pytest.raises(Exception):
        i.opcode = Opcode.HALT  # frozen dataclass
    assert hash(i) == hash(Instruction(Opcode.NOP))
