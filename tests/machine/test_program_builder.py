"""Program builder and symbol table tests."""

import pytest

from repro.machine.isa import Opcode
from repro.machine.program import ProgramBuilder, SymbolError, SymbolTable


class TestSymbolTable:
    def test_scalar_allocation_sequential(self):
        st = SymbolTable()
        assert st.scalar("a") == 0
        assert st.scalar("b") == 1
        assert st.size == 2

    def test_array_allocation(self):
        st = SymbolTable()
        st.scalar("x")
        base = st.array("arr", 5)
        assert base == 1
        assert st.size == 6

    def test_duplicate_rejected(self):
        st = SymbolTable()
        st.scalar("x")
        with pytest.raises(SymbolError):
            st.scalar("x")
        with pytest.raises(SymbolError):
            st.array("x", 3)

    def test_zero_size_array_rejected(self):
        st = SymbolTable()
        with pytest.raises(ValueError):
            st.array("a", 0)

    def test_addr_of(self):
        st = SymbolTable()
        st.scalar("x")
        st.array("a", 3)
        assert st.addr_of("x") == 0
        assert st.addr_of("a") == 1
        with pytest.raises(SymbolError):
            st.addr_of("nope")

    def test_name_of_scalar_and_array(self):
        st = SymbolTable()
        st.scalar("x")
        st.array("a", 3)
        assert st.name_of(0) == "x"
        assert st.name_of(1) == "a[0]"
        assert st.name_of(3) == "a[2]"
        assert st.name_of(99) == "@99"

    def test_names(self):
        st = SymbolTable()
        st.scalar("x")
        st.array("a", 2)
        assert set(st.names()) == {"x", "a"}


class TestProgramBuilder:
    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            ProgramBuilder().build()

    def test_threads_accumulate(self):
        b = ProgramBuilder()
        x = b.var("x")
        with b.thread() as t:
            t.write(x, 1)
        with b.thread() as t:
            t.read(x)
        program = b.build()
        assert program.processor_count == 2

    def test_halt_appended(self):
        b = ProgramBuilder()
        x = b.var("x")
        with b.thread() as t:
            t.write(x, 1)
        program = b.build()
        assert program.threads[0].instructions[-1].opcode is Opcode.HALT

    def test_explicit_halt_not_duplicated(self):
        b = ProgramBuilder()
        with b.thread() as t:
            t.halt()
        program = b.build()
        assert len(program.threads[0]) == 1

    def test_initial_memory(self):
        b = ProgramBuilder()
        b.var("zero")
        b.var("one", initial=1)
        b.array("arr", 3, initial=[0, 7, 0])
        with b.thread() as t:
            t.nop()
        program = b.build()
        assert program.initial_value(0) == 0
        assert program.initial_value(1) == 1
        assert program.initial_value(3) == 7

    def test_array_initializer_too_long(self):
        b = ProgramBuilder()
        with pytest.raises(ValueError):
            b.array("a", 2, initial=[1, 2, 3])

    def test_duplicate_label_rejected(self):
        b = ProgramBuilder()
        with pytest.raises(SymbolError):
            with b.thread() as t:
                t.label("x")
                t.label("x")

    def test_dangling_label_rejected(self):
        b = ProgramBuilder()
        with pytest.raises(SymbolError):
            with b.thread() as t:
                t.jump("nowhere")

    def test_string_location_resolution(self):
        b = ProgramBuilder()
        b.var("flag")
        with b.thread() as t:
            t.write("flag", 9)
        program = b.build()
        instr = program.threads[0].instructions[0]
        assert instr.addr.base == 0

    def test_array_ref_constant_index(self):
        b = ProgramBuilder()
        arr = b.array("a", 4)
        with b.thread() as t:
            t.write(b.at(arr, 2), 1)
        program = b.build()
        assert program.threads[0].instructions[0].addr.base == arr + 2

    def test_array_ref_register_index(self):
        b = ProgramBuilder()
        arr = b.array("a", 4)
        with b.thread() as t:
            i = t.mov(3)
            t.write(b.at(arr, i), 1)
        program = b.build()
        instr = program.threads[0].instructions[1]
        assert instr.addr.base == arr
        assert instr.addr.index == i

    def test_fresh_registers_distinct(self):
        b = ProgramBuilder()
        x = b.var("x")
        with b.thread() as t:
            r1 = t.read(x)
            r2 = t.read(x)
            assert r1 != r2

    def test_thread_context_on_exception_discards(self):
        b = ProgramBuilder()
        b.var("x")
        with pytest.raises(RuntimeError):
            with b.thread() as t:
                t.nop()
                raise RuntimeError("boom")
        with b.thread() as t:
            t.nop()
        assert b.build().processor_count == 1

    def test_lock_emits_spin(self):
        b = ProgramBuilder()
        s = b.var("s")
        with b.thread() as t:
            t.lock(s)
        program = b.build()
        opcodes = [i.opcode for i in program.threads[0].instructions]
        assert Opcode.TEST_AND_SET in opcodes
        assert Opcode.BNZ in opcodes
