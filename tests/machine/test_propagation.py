"""Propagation policy tests."""

import random

import pytest

from repro.machine.memory import MemorySystem
from repro.machine.models import WeakOrdering
from repro.machine.propagation import (
    EagerPropagation,
    HoldbackPropagation,
    RandomPropagation,
    StubbornPropagation,
)


@pytest.fixture
def memory():
    m = MemorySystem(4, 3, WeakOrdering())
    m.write_data(0, 1, 11, seq=0, taint=False)
    m.write_data(0, 2, 22, seq=1, taint=False)
    return m


def test_eager_delivers_everything(memory):
    EagerPropagation().step(memory, random.Random(0))
    assert memory.views_converged()
    assert memory.read_data(2, 1).value == 11


def test_stubborn_delivers_nothing(memory):
    StubbornPropagation().step(memory, random.Random(0))
    assert memory.pending_count() == 2
    assert memory.read_data(1, 1).stale


def test_random_eventually_delivers(memory):
    policy = RandomPropagation(0.5)
    rng = random.Random(1)
    for _ in range(200):
        if memory.views_converged():
            break
        policy.step(memory, rng)
    assert memory.views_converged()


def test_random_probability_validation():
    with pytest.raises(ValueError):
        RandomPropagation(1.5)
    with pytest.raises(ValueError):
        RandomPropagation(-0.1)


def test_random_zero_probability_never_delivers(memory):
    policy = RandomPropagation(0.0)
    rng = random.Random(2)
    for _ in range(50):
        policy.step(memory, rng)
    assert memory.pending_count() == 2


def test_holdback_withholds_chosen_addresses(memory):
    HoldbackPropagation(held=[1]).step(memory, random.Random(0))
    assert memory.read_data(1, 2).value == 22  # addr 2 delivered
    assert memory.read_data(1, 1).stale        # addr 1 held
    assert memory.pending_count() == 1


def test_holdback_released_by_flush(memory):
    HoldbackPropagation(held=[1]).step(memory, random.Random(0))
    memory.flush(0)
    assert memory.views_converged()
    assert memory.read_data(2, 1).value == 11


class TestHomeDirectoryPropagation:
    def test_per_location_homes_reorder_same_writer_writes(self):
        """Two writes by one processor to differently-homed locations
        arrive at a reader out of issue order — deterministically."""
        from repro.machine.propagation import HomeDirectoryPropagation
        near, far = 0, 1  # two locations

        def home_of(addr):
            return 1 if addr == near else 2

        dist = [[0, 1, 9], [1, 0, 9], [9, 9, 0]]
        m = MemorySystem(4, 3, WeakOrdering())
        policy = HomeDirectoryPropagation(home_of, dist)
        rng = random.Random(0)
        m.write_data(0, far, 11, seq=0, taint=False)   # issued FIRST
        m.write_data(0, near, 22, seq=1, taint=False)  # issued second
        for _ in range(5):
            policy.step(m, rng)
        # reader 1 sees the second write but not the first
        assert m.read_data(1, near).value == 22
        assert m.read_data(1, far).stale
        for _ in range(30):
            policy.step(m, rng)
        assert m.read_data(1, far).value == 11  # eventually arrives

    def test_flush_overrides_schedule(self):
        from repro.machine.propagation import HomeDirectoryPropagation
        dist = [[0, 50], [50, 0]]
        m = MemorySystem(2, 2, WeakOrdering())
        policy = HomeDirectoryPropagation(lambda a: 1, dist)
        rng = random.Random(0)
        m.write_data(0, 0, 7, seq=0, taint=False)
        policy.step(m, rng)
        m.flush(0)
        assert m.read_data(1, 0).value == 7
        policy.step(m, rng)  # stale schedule must not blow up
        assert policy._arrivals == {}

    def test_figure2_numa_reproduction(self):
        from repro.core.detector import PostMortemDetector
        from repro.machine.models import make_model
        from repro.programs.workqueue import figure2_numa_setup
        result = figure2_numa_setup(make_model("WO")).run()
        assert result.completed
        stale = result.stale_reads
        assert len(stale) == 1
        assert result.addr_name(stale[0].addr) == "Q"
        assert stale[0].value == 37
        report = PostMortemDetector().analyze_execution(result)
        assert len(report.first_partitions) == 1
        assert report.suppressed_races

    def test_more_processors_than_topology_nodes(self):
        """Processors map onto nodes modulo the node count — a 3-node
        ring must serve a 5-processor machine without error."""
        from repro.machine.models import make_model
        from repro.machine.propagation import HomeDirectoryPropagation
        from repro.machine.simulator import run_program
        from repro.programs.random_programs import random_racy_program
        prog = random_racy_program(3, processors=5, ops_per_thread=4)
        result = run_program(
            prog, make_model("WO"), seed=3,
            propagation=HomeDirectoryPropagation.ring(3),
        )
        assert result.completed
