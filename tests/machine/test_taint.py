"""Taint-tracking (SCP ground truth) tests.

The processor must mark the raw SCP cut at the first operation whose
identity (program point / effective address) depends on a stale value:
control taint from branching on a stale-read register, or address taint
from indexing with one.  Writes of tainted *values* remain in the
prefix (operation identity ignores values, section 2.1).
"""

from repro.machine.models import make_model
from repro.machine.program import ProgramBuilder
from repro.machine.propagation import StubbornPropagation
from repro.machine.scheduler import ScriptedScheduler
from repro.machine.simulator import Simulator


def _run_scripted(program, script, model="WO"):
    sim = Simulator(
        program,
        make_model(model),
        scheduler=ScriptedScheduler(script),
        propagation=StubbornPropagation(),
        seed=0,
    )
    return sim.run()


def _stale_read_program():
    """P0 writes x (buffered); P1 reads x stale."""
    b = ProgramBuilder()
    x = b.var("x")
    b.var("out")
    return b, x


def test_stale_read_alone_does_not_cut():
    b, x = _stale_read_program()
    with b.thread() as t:
        t.write(x, 1)
    with b.thread() as t:
        t.read(x)
    # P0 writes (buffered), then P1 reads stale.
    res = _run_scripted(b.build(), [0, 1])
    assert len(res.stale_reads) == 1
    assert res.raw_scp_cuts == [None, None]


def test_write_of_tainted_value_stays_in_prefix():
    b, x = _stale_read_program()
    with b.thread() as t:
        t.write(x, 1)
    with b.thread() as t:
        v = t.read(x)
        t.write("out", v)  # same operation identity in any SC execution
    res = _run_scripted(b.build(), [0, 1, 1])
    assert res.raw_scp_cuts == [None, None]


def test_branch_on_stale_value_cuts_at_next_operation():
    b, x = _stale_read_program()
    y = b.var("y")
    with b.thread() as t:
        t.write(x, 1)
    with b.thread() as t:
        v = t.read(x)          # op 0: stale
        t.jump_if_zero(v, "a")  # control now tainted
        t.write(y, 1)
        t.jump("end")
        t.label("a")
        t.write(y, 2)           # op 1: first op under tainted control
        t.label("end")
    res = _run_scripted(b.build(), [0, 1, 1, 1])
    assert res.raw_scp_cuts[1] == 1


def test_tainted_address_cuts():
    b = ProgramBuilder()
    idx = b.var("idx")
    arr = b.array("arr", 8)
    with b.thread() as t:
        t.write(idx, 3)
    with b.thread() as t:
        i = t.read(idx)              # op 0: stale (value 0, not 3)
        t.write(b.at(arr, i), 9)     # op 1: address depends on stale value
    res = _run_scripted(b.build(), [0, 1, 1])
    assert res.raw_scp_cuts[1] == 1


def test_taint_propagates_through_alu():
    b = ProgramBuilder()
    idx = b.var("idx")
    arr = b.array("arr", 8)
    with b.thread() as t:
        t.write(idx, 3)
    with b.thread() as t:
        i = t.read(idx)
        j = t.add(i, 1)
        k = t.mul(j, 2)
        t.write(b.at(arr, k), 9)
    res = _run_scripted(b.build(), [0, 1, 1, 1, 1])
    assert res.raw_scp_cuts[1] == 1


def test_taint_propagates_through_memory_to_third_processor():
    b = ProgramBuilder()
    x = b.var("x")
    relay = b.var("relay")
    arr = b.array("arr", 8)
    with b.thread() as t:       # P0: the racing writer
        t.write(x, 3)
    with b.thread() as t:       # P1: stale read, relays the value
        v = t.read(x)
        t.write(relay, v)
        t.fence()               # make the relayed (tainted) value visible
    with b.thread() as t:       # P2: consumes the tainted value
        w = t.read(relay)
        t.write(b.at(arr, w), 1)
    res = _run_scripted(b.build(), [0, 1, 1, 1, 2, 2])
    assert res.raw_scp_cuts[2] == 1


def test_fresh_values_never_taint():
    b = ProgramBuilder()
    x = b.var("x")
    arr = b.array("arr", 4)
    with b.thread() as t:
        t.write(x, 2)
        t.fence()
    with b.thread() as t:
        v = t.read(x)
        t.write(b.at(arr, v), 5)
    res = _run_scripted(b.build(), [0, 0, 1, 1])
    assert res.stale_reads == []
    assert res.raw_scp_cuts == [None, None]


def test_sync_reads_never_stale_never_taint():
    b = ProgramBuilder()
    s = b.var("s")
    arr = b.array("arr", 4)
    with b.thread() as t:
        t.write(s, 2)  # a *data* write to the sync location, buffered
    with b.thread() as t:
        v = t.acquire_read(s)  # sync read: sees committed value 2
        t.write(b.at(arr, v), 1)
    res = _run_scripted(b.build(), [0, 1, 1])
    acquire = [op for op in res.operations if op.is_sync][0]
    assert acquire.value == 2
    assert not acquire.stale
    assert res.raw_scp_cuts == [None, None]
