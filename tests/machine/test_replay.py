"""Record/replay tests."""

import pytest

from repro.machine.models import make_model
from repro.machine.propagation import RandomPropagation, StubbornPropagation
from repro.machine.replay import (
    ExecutionRecording,
    ReplayError,
    executions_equal,
    record_execution,
    replay_execution,
    verify_recording,
)
from repro.programs.figure1 import figure1a_program, figure1b_program
from repro.programs.kernels import locked_counter_program
from repro.programs.workqueue import buggy_workqueue_program


def test_replay_reproduces_execution_exactly():
    program = buggy_workqueue_program()
    model = make_model("WO")
    original, recording = record_execution(program, model, seed=17)
    replayed = replay_execution(program, make_model("WO"), recording)
    assert executions_equal(original, replayed)
    assert replayed.stale_reads == original.stale_reads


def test_replay_preserves_stale_reads_and_cuts():
    program = buggy_workqueue_program()
    original, recording = record_execution(
        program, make_model("RCsc"), seed=23,
        propagation=RandomPropagation(0.2),
    )
    replayed = replay_execution(program, make_model("RCsc"), recording)
    assert [op.seq for op in replayed.stale_reads] == \
           [op.seq for op in original.stale_reads]
    assert replayed.raw_scp_cuts == original.raw_scp_cuts


def test_replay_many_seeds():
    program = locked_counter_program(3, 2)
    for seed in range(6):
        original, recording = record_execution(
            program, make_model("WO"), seed=seed
        )
        replayed = replay_execution(program, make_model("WO"), recording)
        assert executions_equal(original, replayed), seed


def test_recording_roundtrips_through_file(tmp_path):
    program = figure1b_program()
    original, recording = record_execution(program, make_model("DRF1"), seed=5)
    path = tmp_path / "exec.replay"
    recording.save(path)
    loaded = ExecutionRecording.load(path)
    replayed = replay_execution(program, make_model("DRF1"), loaded)
    assert executions_equal(original, replayed)


def test_model_mismatch_rejected():
    program = figure1a_program()
    _, recording = record_execution(program, make_model("WO"), seed=0)
    with pytest.raises(ReplayError, match="replaying on"):
        replay_execution(program, make_model("SC"), recording)


def test_program_mismatch_detected():
    _, recording = record_execution(
        buggy_workqueue_program(), make_model("WO"), seed=3
    )
    with pytest.raises(ReplayError):
        replay_execution(figure1a_program(), make_model("WO"), recording)


def test_bad_format_rejected(tmp_path):
    path = tmp_path / "bad.replay"
    path.write_text('{"format": 99}')
    with pytest.raises(ReplayError, match="unsupported"):
        ExecutionRecording.load(path)


def test_recording_captures_stubborn_deliveries_as_empty():
    program = figure1a_program()
    _, recording = record_execution(
        program, make_model("WO"), seed=0,
        propagation=StubbornPropagation(),
    )
    assert all(step == [] for step in recording.deliveries)


def test_recording_is_picklable():
    """Recordings cross process boundaries in the parallel hunt engine;
    a pickle round-trip must preserve them exactly."""
    import pickle
    program = buggy_workqueue_program()
    original, recording = record_execution(program, make_model("WO"), seed=7)
    clone = pickle.loads(pickle.dumps(recording))
    assert clone == recording
    assert clone is not recording
    replayed = replay_execution(program, make_model("WO"), clone)
    assert executions_equal(original, replayed)


def test_verify_recording_accepts_faithful_recording():
    program = buggy_workqueue_program()
    original, recording = record_execution(program, make_model("WO"), seed=11)
    assert verify_recording(program, make_model("WO"), recording, original)


def test_verify_recording_rejects_corrupted_recording():
    program = buggy_workqueue_program()
    original, recording = record_execution(program, make_model("WO"), seed=11)
    corrupted = ExecutionRecording(
        model_name=recording.model_name,
        schedule=recording.schedule[: len(recording.schedule) // 2],
        deliveries=recording.deliveries[: len(recording.deliveries) // 2],
    )
    assert not verify_recording(program, make_model("WO"), corrupted, original)


def test_verify_recording_rejects_wrong_model():
    program = buggy_workqueue_program()
    original, recording = record_execution(program, make_model("WO"), seed=11)
    assert not verify_recording(program, make_model("SC"), recording, original)


def test_replayed_analysis_identical():
    from repro.core.detector import PostMortemDetector
    program = buggy_workqueue_program()
    original, recording = record_execution(program, make_model("WO"), seed=41)
    replayed = replay_execution(program, make_model("WO"), recording)
    det = PostMortemDetector()
    assert det.analyze_execution(original).format() == \
           det.analyze_execution(replayed).format()
