"""CAS instruction tests."""

import pytest

from repro.core.detector import PostMortemDetector
from repro.machine.assembler import format_program, parse_program
from repro.machine.models import ALL_MODEL_NAMES, make_model
from repro.machine.operations import OperationKind, SyncRole
from repro.machine.program import ProgramBuilder
from repro.machine.propagation import StubbornPropagation
from repro.machine.scheduler import ScriptedScheduler
from repro.machine.simulator import Simulator, run_program

DET = PostMortemDetector()


def _run(builder_fn, model="SC", seed=0, **kwargs):
    b = ProgramBuilder()
    builder_fn(b)
    return run_program(b.build(), make_model(model), seed=seed, **kwargs)


class TestSemantics:
    def test_success_writes_and_returns_one(self):
        def build(b):
            c = b.var("c", initial=7)
            ok = b.var("ok")
            with b.thread() as t:
                r = t.cas(c, 7, 99)
                t.write(ok, r)
        res = _run(build)
        assert res.value_of("c") == 99
        assert res.value_of("ok") == 1

    def test_failure_leaves_memory_and_returns_zero(self):
        def build(b):
            c = b.var("c", initial=7)
            ok = b.var("ok", initial=5)
            with b.thread() as t:
                r = t.cas(c, 8, 99)
                t.write(ok, r)
        res = _run(build)
        assert res.value_of("c") == 7
        assert res.value_of("ok") == 0

    def test_register_operands(self):
        def build(b):
            c = b.var("c", initial=3)
            with b.thread() as t:
                expected = t.mov(3)
                new = t.mov(44)
                t.cas(c, expected, new)
        res = _run(build)
        assert res.value_of("c") == 44

    def test_success_emits_acquire_read_and_sync_only_write(self):
        def build(b):
            c = b.var("c")
            with b.thread() as t:
                t.cas(c, 0, 1)
        res = _run(build)
        roles = [(op.kind, op.role) for op in res.operations]
        assert roles == [
            (OperationKind.READ, SyncRole.ACQUIRE),
            (OperationKind.WRITE, SyncRole.SYNC_ONLY),
        ]

    def test_failure_emits_only_the_read(self):
        def build(b):
            c = b.var("c", initial=9)
            with b.thread() as t:
                t.cas(c, 0, 1)
        res = _run(build)
        assert len(res.operations) == 1
        assert res.operations[0].is_read

    def test_atomicity_no_lost_updates(self):
        from repro.programs.kernels import cas_counter_program
        for model in ALL_MODEL_NAMES:
            for seed in range(4):
                res = run_program(
                    cas_counter_program(4, 3), make_model(model), seed=seed
                )
                assert res.completed
                assert res.value_of("counter") == 12, (model, seed)

    def test_cas_write_is_not_a_release(self):
        """A reader acquiring the value a CAS wrote gets no hb1
        ordering (like Test&Set's write, section 2.1)."""
        def build(b):
            c = b.var("c")
            x = b.var("x")
            with b.thread() as t:
                t.write(x, 1)      # buffered data write
                t.cas(c, 0, 5)     # sync write of 5, NOT a release
            with b.thread() as t:
                t.acquire_read(c)  # reads 5: no pairing
                t.read(x)
        b = ProgramBuilder()
        build(b)
        sim = Simulator(
            b.build(), make_model("RCsc"),
            scheduler=ScriptedScheduler([0, 0, 1, 1]),
            propagation=StubbornPropagation(), seed=0,
        )
        res = sim.run()
        report = DET.analyze_execution(res)
        assert not report.race_free  # x write/read unordered
        x_read = [op for op in res.per_proc[1] if op.is_data][0]
        assert x_read.stale  # RCsc never flushed (CAS isn't a release)


class TestCASKernels:
    def test_cas_programs_race_free(self):
        from repro.programs.kernels import (
            cas_counter_program, cas_slot_allocator_program,
        )
        for seed in range(3):
            for prog in (cas_counter_program(2, 2),
                         cas_slot_allocator_program(3)):
                res = run_program(
                    prog, make_model("WO"), seed=seed,
                    propagation=StubbornPropagation(),
                )
                assert res.completed
                assert DET.analyze_execution(res).race_free

    def test_slot_allocation_unique(self):
        from repro.programs.kernels import cas_slot_allocator_program
        for seed in range(6):
            res = run_program(
                cas_slot_allocator_program(4), make_model("RCsc"), seed=seed
            )
            base = res.symbols.addr_of("slots")
            values = sorted(res.final_memory[base + i] for i in range(4))
            assert values == [100, 101, 102, 103], seed

    def test_validation(self):
        from repro.programs.kernels import (
            cas_counter_program, cas_slot_allocator_program,
        )
        with pytest.raises(ValueError):
            cas_counter_program(0)
        with pytest.raises(ValueError):
            cas_slot_allocator_program(0)


class TestAssemblerAndStatic:
    def test_cas_assembles_and_formats(self):
        text = """
.var c = 7
.thread
    cas %ok, c, #7, #42
"""
        program = parse_program(text)
        res = run_program(program, make_model("SC"), seed=0)
        assert res.value_of("c") == 42
        rendered = format_program(program)
        assert "cas %ok, c, #7, #42" in rendered
        reparsed = parse_program(rendered)
        res2 = run_program(reparsed, make_model("SC"), seed=0)
        assert res2.value_of("c") == 42

    def test_static_analysis_sees_cas_as_sync(self):
        from repro.staticanalysis import find_static_races
        from repro.programs.kernels import cas_counter_program
        report = find_static_races(cas_counter_program(2, 1))
        # all counter accesses are sync: no data race pairs
        assert not report.potentially_racy

    def test_exhaustive_explorer_handles_cas_spin(self):
        from repro.analysis.exhaustive import is_program_data_race_free
        b = ProgramBuilder()
        gate = b.var("gate")
        with b.thread() as t:
            t.release_write(gate, 1)
        with b.thread() as t:
            t.label("spin")
            got = t.cas(gate, 1, 2)
            t.jump_if_zero(got, "spin")
        assert is_program_data_race_free(b.build())
