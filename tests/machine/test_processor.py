"""Processor interpretation tests via tiny single/multi-thread programs."""

import pytest

from repro.machine.models import SequentialConsistency, make_model
from repro.machine.operations import OperationKind, SyncRole
from repro.machine.program import ProgramBuilder
from repro.machine.simulator import run_program


def _run(builder_fn, model="SC", seed=0, **kwargs):
    b = ProgramBuilder()
    builder_fn(b)
    return run_program(b.build(), make_model(model), seed=seed, **kwargs)


def test_mov_add_sub_mul():
    def build(b):
        out = b.var("out")
        with b.thread() as t:
            a = t.mov(6)
            c = t.add(a, 4)      # 10
            d = t.sub(c, 3)      # 7
            e = t.mul(d, 5)      # 35
            t.write(out, e)
    res = _run(build)
    assert res.value_of("out") == 35


def test_cmp_eq_and_lt():
    def build(b):
        eq = b.var("eq")
        lt = b.var("lt")
        with b.thread() as t:
            r = t.cmp_eq(3, 3)
            t.write(eq, r)
            r2 = t.cmp_lt(5, 3)
            t.write(lt, r2)
    res = _run(build)
    assert res.value_of("eq") == 1
    assert res.value_of("lt") == 0


def test_read_write_roundtrip():
    def build(b):
        x = b.var("x", initial=9)
        y = b.var("y")
        with b.thread() as t:
            v = t.read(x)
            t.write(y, v)
    res = _run(build)
    assert res.value_of("y") == 9


def test_branch_if_zero_taken():
    def build(b):
        out = b.var("out")
        with b.thread() as t:
            z = t.mov(0)
            t.jump_if_zero(z, "skip")
            t.write(out, 111)
            t.label("skip")
            t.write(out, 222)
    res = _run(build)
    assert res.value_of("out") == 222
    # the skipped write never issued
    writes = [op for op in res.operations if op.is_write]
    assert len(writes) == 1


def test_loop_with_counter():
    def build(b):
        out = b.var("out")
        with b.thread() as t:
            i = t.mov(0)
            total = t.mov(0)
            t.label("loop")
            t.add(total, i, dst=total)
            t.add(i, 1, dst=i)
            more = t.cmp_lt(i, 5)
            t.jump_if_nonzero(more, "loop")
            t.write(out, total)
    res = _run(build)
    assert res.value_of("out") == 0 + 1 + 2 + 3 + 4


def test_test_and_set_returns_old_value_and_sets():
    def build(b):
        s = b.var("s")
        got = b.var("got")
        with b.thread() as t:
            old = t.test_and_set(s)
            t.write(got, old)
    res = _run(build)
    assert res.value_of("got") == 0
    assert res.value_of("s") == 1


def test_test_and_set_emits_acquire_read_and_sync_only_write():
    def build(b):
        s = b.var("s")
        with b.thread() as t:
            t.test_and_set(s)
    res = _run(build)
    kinds = [(op.kind, op.role) for op in res.operations]
    assert kinds == [
        (OperationKind.READ, SyncRole.ACQUIRE),
        (OperationKind.WRITE, SyncRole.SYNC_ONLY),
    ]


def test_unset_emits_release_write_of_zero():
    def build(b):
        s = b.var("s", initial=1)
        with b.thread() as t:
            t.unset(s)
    res = _run(build)
    op = res.operations[0]
    assert op.role is SyncRole.RELEASE
    assert op.value == 0
    assert res.value_of("s") == 0


def test_release_acquire_flag():
    def build(b):
        f = b.var("f")
        seen = b.var("seen")
        with b.thread() as t:
            t.release_write(f, 5)
        with b.thread() as t:
            v = t.spin_until_eq(f, 5)
            t.write(seen, v)
    res = _run(build)
    assert res.value_of("seen") == 5


def test_register_indexed_addressing():
    def build(b):
        arr = b.array("arr", 4)
        with b.thread() as t:
            i = t.mov(2)
            t.write(b.at(arr, i), 77)
    res = _run(build)
    assert res.final_memory[2] == 77  # arr base 0 + index 2


def test_halt_stops_mid_program():
    def build(b):
        out = b.var("out")
        with b.thread() as t:
            t.write(out, 1)
            t.halt()
            t.write(out, 2)
    res = _run(build)
    assert res.value_of("out") == 1


def test_fence_drains_buffered_writes():
    def build(b):
        x = b.var("x")
        with b.thread() as t:
            t.write(x, 1)
            t.fence()
        with b.thread() as t:
            t.read(x)

    from repro.machine.propagation import StubbornPropagation
    from repro.machine.scheduler import ScriptedScheduler
    from repro.machine.simulator import Simulator
    b = ProgramBuilder()
    build(b)
    program = b.build()
    sim = Simulator(
        program,
        make_model("WO"),
        scheduler=ScriptedScheduler([0, 0, 1]),
        propagation=StubbornPropagation(),
        seed=0,
    )
    res = sim.run()
    read = [op for op in res.operations if op.is_read][0]
    assert read.value == 1
    assert not read.stale


def test_instruction_and_cycle_counters():
    def build(b):
        x = b.var("x")
        with b.thread() as t:
            t.write(x, 1)
            t.write(x, 2)
    res = _run(build)
    stats = res.stats[0]
    assert stats.instructions == 3  # two writes + implicit halt
    assert stats.operations == 2
    assert stats.cycles >= stats.instructions
    assert stats.stall_cycles == 2 * SequentialConsistency().data_write_stall()
