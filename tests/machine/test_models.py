"""Memory-model flush rules and stall accounting."""

import pytest

from repro.machine.models import (
    ALL_MODEL_NAMES,
    MODEL_REGISTRY,
    WEAK_MODEL_NAMES,
    CostModel,
    DataRaceFree0,
    DataRaceFree1,
    ReleaseConsistencySC,
    SequentialConsistency,
    WeakOrdering,
    make_model,
)
from repro.machine.operations import SyncRole


class TestRegistry:
    def test_all_names_resolvable(self):
        for name in ALL_MODEL_NAMES:
            assert make_model(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_model("TSO")

    def test_weak_models_subset(self):
        assert set(WEAK_MODEL_NAMES) < set(MODEL_REGISTRY)
        assert "SC" not in WEAK_MODEL_NAMES


class TestBufferingRules:
    def test_sc_never_buffers(self):
        assert not SequentialConsistency().buffers_data_writes()

    @pytest.mark.parametrize("cls", [WeakOrdering, ReleaseConsistencySC,
                                     DataRaceFree0, DataRaceFree1])
    def test_weak_models_buffer(self, cls):
        assert cls().buffers_data_writes()


class TestFlushRules:
    @pytest.mark.parametrize("cls", [WeakOrdering, DataRaceFree0])
    def test_wo_family_flushes_at_every_sync(self, cls):
        m = cls()
        assert m.flushes_at(SyncRole.ACQUIRE)
        assert m.flushes_at(SyncRole.RELEASE)
        assert m.flushes_at(SyncRole.SYNC_ONLY)
        assert not m.flushes_at(SyncRole.NONE)

    @pytest.mark.parametrize("cls", [ReleaseConsistencySC, DataRaceFree1])
    def test_rc_family_flushes_at_release_only(self, cls):
        m = cls()
        assert m.flushes_at(SyncRole.RELEASE)
        assert not m.flushes_at(SyncRole.ACQUIRE)
        assert not m.flushes_at(SyncRole.SYNC_ONLY)


class TestStallAccounting:
    def test_sc_data_write_stalls_full_latency(self):
        costs = CostModel(write_latency=10)
        assert SequentialConsistency(costs).data_write_stall() == 10

    def test_weak_data_write_free(self):
        assert WeakOrdering().data_write_stall() == 0

    def test_sync_write_base_cost(self):
        costs = CostModel(write_latency=10, drain_per_write=2)
        m = WeakOrdering(costs)
        assert m.sync_write_stall(SyncRole.RELEASE, 0) == 10

    def test_flush_penalty_round_trip_plus_drains(self):
        costs = CostModel(write_latency=10, drain_per_write=2)
        m = WeakOrdering(costs)
        # base 10 + round trip 10 + 3 drains * 2
        assert m.sync_write_stall(SyncRole.RELEASE, 3) == 26

    def test_sync_read_cheaper_than_write(self):
        costs = CostModel(write_latency=10, read_latency=1)
        m = WeakOrdering(costs)
        assert m.sync_read_stall(SyncRole.ACQUIRE, 0) == 1

    def test_data_read_stall(self):
        costs = CostModel(read_latency=3)
        assert WeakOrdering(costs).data_read_stall() == 3

    def test_repr_contains_name(self):
        assert "WO" in repr(WeakOrdering())
