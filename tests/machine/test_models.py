"""Memory-model flush rules and stall accounting."""

import pytest

from repro.machine.models import (
    ALL_MODEL_NAMES,
    MODEL_REGISTRY,
    WEAK_MODEL_NAMES,
    CostModel,
    DataRaceFree0,
    DataRaceFree1,
    PartialStoreOrder,
    ReleaseConsistencySC,
    SequentialConsistency,
    TotalStoreOrder,
    WeakOrdering,
    make_model,
)
from repro.machine.operations import SyncRole


class TestRegistry:
    def test_all_names_resolvable(self):
        for name in ALL_MODEL_NAMES:
            assert make_model(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError) as exc:
            make_model("XC")
        # the error lists every registered name, from one source of truth
        for name in ALL_MODEL_NAMES:
            assert name in str(exc.value)

    def test_weak_models_subset(self):
        assert set(WEAK_MODEL_NAMES) < set(MODEL_REGISTRY)
        assert "SC" not in WEAK_MODEL_NAMES

    def test_tuples_registry_driven(self):
        assert set(ALL_MODEL_NAMES) == set(MODEL_REGISTRY)
        assert set(WEAK_MODEL_NAMES) == set(MODEL_REGISTRY) - {"SC"}
        assert {"TSO", "PSO"} <= set(WEAK_MODEL_NAMES)


class TestBufferingRules:
    def test_sc_never_buffers(self):
        assert not SequentialConsistency().buffers_data_writes()

    @pytest.mark.parametrize("cls", [WeakOrdering, ReleaseConsistencySC,
                                     DataRaceFree0, DataRaceFree1,
                                     TotalStoreOrder, PartialStoreOrder])
    def test_weak_models_buffer(self, cls):
        assert cls().buffers_data_writes()


class TestFlushRules:
    @pytest.mark.parametrize("cls", [WeakOrdering, DataRaceFree0])
    def test_wo_family_flushes_at_every_sync(self, cls):
        m = cls()
        assert m.flushes_at(SyncRole.ACQUIRE)
        assert m.flushes_at(SyncRole.RELEASE)
        assert m.flushes_at(SyncRole.SYNC_ONLY)
        assert not m.flushes_at(SyncRole.NONE)

    @pytest.mark.parametrize("cls", [ReleaseConsistencySC, DataRaceFree1])
    def test_rc_family_flushes_at_release_only(self, cls):
        m = cls()
        assert m.flushes_at(SyncRole.RELEASE)
        assert not m.flushes_at(SyncRole.ACQUIRE)
        assert not m.flushes_at(SyncRole.SYNC_ONLY)

    @pytest.mark.parametrize("cls", [TotalStoreOrder, PartialStoreOrder])
    def test_store_buffer_family_drains_at_release_and_rmw(self, cls):
        m = cls()
        assert m.flushes_at(SyncRole.RELEASE)
        assert m.flushes_at(SyncRole.SYNC_ONLY)  # RMW write half drains
        assert not m.flushes_at(SyncRole.ACQUIRE)  # loads never drain
        assert not m.flushes_at(SyncRole.NONE)


class TestStoreOrderGranularity:
    @pytest.mark.parametrize("cls", [SequentialConsistency, WeakOrdering,
                                     ReleaseConsistencySC, DataRaceFree0,
                                     DataRaceFree1])
    def test_unordered_models_have_no_discipline(self, cls):
        assert cls().store_order_granularity() is None

    def test_tso_single_fifo_per_processor(self):
        assert TotalStoreOrder().store_order_granularity() == "proc"

    def test_pso_fifo_per_address(self):
        assert PartialStoreOrder().store_order_granularity() == "addr"


class TestStallAccounting:
    def test_sc_data_write_stalls_full_latency(self):
        costs = CostModel(write_latency=10)
        assert SequentialConsistency(costs).data_write_stall() == 10

    def test_weak_data_write_free(self):
        assert WeakOrdering().data_write_stall() == 0

    def test_sync_write_base_cost(self):
        costs = CostModel(write_latency=10, drain_per_write=2)
        m = WeakOrdering(costs)
        assert m.sync_write_stall(SyncRole.RELEASE, 0) == 10

    def test_flush_penalty_round_trip_plus_drains(self):
        costs = CostModel(write_latency=10, drain_per_write=2)
        m = WeakOrdering(costs)
        # base 10 + round trip 10 + 3 drains * 2
        assert m.sync_write_stall(SyncRole.RELEASE, 3) == 26

    def test_sync_read_cheaper_than_write(self):
        costs = CostModel(write_latency=10, read_latency=1)
        m = WeakOrdering(costs)
        assert m.sync_read_stall(SyncRole.ACQUIRE, 0) == 1

    def test_data_read_stall(self):
        costs = CostModel(read_latency=3)
        assert WeakOrdering(costs).data_read_stall() == 3

    def test_repr_contains_name(self):
        assert "WO" in repr(WeakOrdering())
