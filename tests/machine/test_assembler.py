"""Assembler / disassembler tests."""

import pytest

from repro.core.detector import PostMortemDetector
from repro.machine.assembler import (
    AssemblyError,
    format_program,
    parse_program,
)
from repro.machine.isa import Opcode
from repro.machine.models import make_model
from repro.machine.simulator import run_program

FIGURE_1B = """
; Figure 1b of the paper
.var x
.var y
.var s = 1

.thread            ; P1
    write x, #1
    write y, #1
    unset s

.thread            ; P2
spin:
    testset %got, s
    bnz %got, spin
    read %ry, y
    read %rx, x
"""


def test_parse_and_run_figure1b():
    program = parse_program(FIGURE_1B)
    assert program.processor_count == 2
    assert program.initial_value(program.symbols.addr_of("s")) == 1
    result = run_program(program, make_model("WO"), seed=1)
    assert result.completed
    assert PostMortemDetector().analyze_execution(result).race_free
    assert result.registers[1]["rx"] == 1
    assert result.registers[1]["ry"] == 1


def test_halt_appended():
    program = parse_program(".var x\n.thread\n    write x, #1\n")
    assert program.threads[0].instructions[-1].opcode is Opcode.HALT


def test_array_declaration_and_indexing():
    text = """
.array buf[4] = 0 7 0 9
.thread
    mov %i, #1
    read %v, buf[%i]
    read %w, buf[3]
    write @0, %v
"""
    program = parse_program(text)
    result = run_program(program, make_model("SC"), seed=0)
    assert result.registers[0]["v"] == 7
    assert result.registers[0]["w"] == 9


def test_all_mnemonics_parse():
    text = """
.var a
.var f
.thread
top:
    read %r, a
    write a, #1
    testset %t, f
    unset f
    acqread %q, f
    relwrite f, %r
    fence
    mov %m, #3
    add %m, %m, #1
    sub %m, %m, #1
    mul %m, %m, #2
    cmpeq %c, %m, #6
    cmplt %d, %m, #9
    bz %c, top
    bnz %d, end
    jmp end
end:
    nop
    halt
"""
    program = parse_program(text)
    opcodes = {i.opcode for i in program.threads[0].instructions}
    assert Opcode.TEST_AND_SET in opcodes
    assert Opcode.FENCE in opcodes


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            parse_program(".thread\n    frobnicate %r\n")

    def test_unknown_location(self):
        with pytest.raises(AssemblyError, match="unknown location"):
            parse_program(".thread\n    read %r, nope\n")

    def test_wrong_arity(self):
        with pytest.raises(AssemblyError, match="takes 2 operand"):
            parse_program(".var x\n.thread\n    read %r\n")

    def test_bad_register(self):
        with pytest.raises(AssemblyError, match="expected register"):
            parse_program(".var x\n.thread\n    read r, x\n")

    def test_instruction_outside_thread(self):
        with pytest.raises(AssemblyError, match="outside .thread"):
            parse_program(".var x\n    read %r, x\n")

    def test_declaration_after_thread(self):
        with pytest.raises(AssemblyError, match="precede"):
            parse_program(".thread\n    nop\n.thread\n    nop\n.var x\n")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError, match="duplicate label"):
            parse_program(".thread\nfoo:\nfoo:\n    nop\n")

    def test_undefined_label(self):
        with pytest.raises(AssemblyError, match="undefined label"):
            parse_program(".thread\n    jmp nowhere\n")

    def test_no_threads(self):
        with pytest.raises(AssemblyError, match="no .thread"):
            parse_program(".var x\n")

    def test_duplicate_symbol(self):
        with pytest.raises(AssemblyError):
            parse_program(".var x\n.var x\n.thread\n    nop\n")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError) as exc:
            parse_program(".var x\n.thread\n    read %r, nope\n")
        assert exc.value.line_no == 3
        assert "line 3" in str(exc.value)

    def test_array_initializer_too_long(self):
        with pytest.raises(AssemblyError, match="longer than array"):
            parse_program(".array a[2] = 1 2 3\n.thread\n    nop\n")


class TestRoundTrip:
    def test_format_then_parse_equivalent(self):
        original = parse_program(FIGURE_1B)
        text = format_program(original)
        reparsed = parse_program(text)
        assert reparsed.processor_count == original.processor_count
        assert reparsed.initial_memory == original.initial_memory
        for ta, tb in zip(original.threads, reparsed.threads):
            assert [i.opcode for i in ta.instructions] == \
                   [i.opcode for i in tb.instructions]

    def test_builder_programs_round_trip(self):
        from repro.programs.workqueue import buggy_workqueue_program
        from repro.programs.kernels import locked_counter_program
        for program in (buggy_workqueue_program(),
                        locked_counter_program(2, 2)):
            reparsed = parse_program(format_program(program))
            a = run_program(program, make_model("SC"), seed=5)
            b = run_program(reparsed, make_model("SC"), seed=5)
            assert [
                (op.proc, op.kind, op.addr, op.value) for op in a.operations
            ] == [
                (op.proc, op.kind, op.addr, op.value) for op in b.operations
            ]

    def test_initial_values_preserved(self):
        program = parse_program(".var s = 1\n.array a[3] = 0 5 0\n.thread\n    nop\n")
        text = format_program(program)
        assert "= 1" in text
        assert "0 5 0" in text


def test_every_mnemonic_documented():
    """The module docstring's grammar must mention every mnemonic."""
    import repro.machine.assembler as asm
    for mnemonic in asm._MNEMONICS:
        assert mnemonic in asm.__doc__, mnemonic
