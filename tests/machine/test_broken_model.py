"""Ablation tests: the non-compliant model violates Condition 3.4(1)."""

from repro.core.detector import PostMortemDetector
from repro.core.scp import check_condition_34
from repro.machine.models import WeakOrdering, make_model
from repro.machine.models.broken import BrokenWeakOrdering
from repro.machine.propagation import StubbornPropagation
from repro.machine.scheduler import ScriptedScheduler
from repro.machine.simulator import Simulator, run_program
from repro.programs.figure1 import figure1b_program


def _run_fig1b(model):
    # P1 writes x, y, Unset; P2 spins, then reads. Stubborn propagation
    # so only flushes make buffered writes visible.
    return Simulator(
        figure1b_program(), model,
        scheduler=ScriptedScheduler([0, 0, 0, 1, 1, 1, 1, 1]),
        propagation=StubbornPropagation(), seed=0,
    ).run()


def test_not_in_registry():
    import pytest
    with pytest.raises(ValueError):
        make_model("BrokenWO")


def test_compliant_model_gives_sc():
    result = _run_fig1b(WeakOrdering())
    assert result.completed
    assert not result.stale_reads
    assert check_condition_34(result).ok


def test_broken_model_violates_clause1():
    """The same DRF program, same schedule, on the broken hardware:
    P2 acquires the lock but reads stale x/y — no data races, yet not
    sequentially consistent."""
    result = _run_fig1b(BrokenWeakOrdering())
    assert result.completed
    assert result.stale_reads  # the smoking gun
    report = check_condition_34(result)
    assert report.data_race_free      # no data races...
    assert not report.no_stale_reads  # ...but not SC
    assert not report.clause1_ok
    assert not report.ok


def test_detector_conclusion_would_be_wrong_on_broken_hardware():
    """The detector (which sees only the trace) reports no races; on
    compliant hardware that proves SC, on broken hardware it does not —
    the reader actually saw stale values."""
    result = _run_fig1b(BrokenWeakOrdering())
    report = PostMortemDetector().analyze_execution(result)
    assert report.race_free  # trace looks clean
    # Ground truth disagrees with what the report licenses:
    reads = [op for op in result.per_proc[1] if op.is_data and op.is_read]
    assert any(op.value == 0 for op in reads)  # stale x or y observed


def test_broken_model_detected_across_seeds():
    violations = 0
    for seed in range(10):
        result = run_program(
            figure1b_program(), BrokenWeakOrdering(), seed=seed,
            propagation=StubbornPropagation(),
        )
        if not check_condition_34(result).ok:
            violations += 1
    assert violations > 0
