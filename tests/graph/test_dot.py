"""Tests for DOT rendering."""

from repro.graph import DiGraph, to_dot


def test_basic_structure():
    g = DiGraph()
    g.add_edge("a", "b")
    dot = to_dot(g)
    assert dot.startswith("digraph G {")
    assert dot.rstrip().endswith("}")
    assert "->" in dot


def test_custom_labels():
    g = DiGraph()
    g.add_node("n")
    dot = to_dot(g, label_of=lambda n: f"node-{n}")
    assert 'label="node-n"' in dot


def test_quote_escaping():
    g = DiGraph()
    g.add_node('we"ird')
    dot = to_dot(g)
    assert '\\"' in dot


def test_edge_attrs():
    g = DiGraph()
    g.add_edge(1, 2)
    dot = to_dot(g, edge_attrs=lambda s, d: {"style": "dashed"})
    assert 'style="dashed"' in dot


def test_clusters():
    g = DiGraph()
    g.add_edge("a", "b")
    g.add_node("c")
    dot = to_dot(g, clusters={"my box": ["a", "b"]})
    assert "subgraph cluster_0" in dot
    assert 'label="my box"' in dot


def test_node_attrs():
    g = DiGraph()
    g.add_node("x")
    dot = to_dot(g, node_attrs=lambda n: {"color": "red"})
    assert 'color="red"' in dot


def test_every_node_rendered_once():
    g = DiGraph()
    g.add_edges([("a", "b"), ("b", "c")])
    dot = to_dot(g, clusters={"grp": ["a"]})
    # 3 node declaration lines: one in the cluster, two outside.
    declarations = [l for l in dot.splitlines() if "[label=" in l and "->" not in l]
    assert len(declarations) == 3
