"""Tests for Tarjan SCCs."""

from repro.graph import DiGraph, component_map, strongly_connected_components


def _scc_sets(graph):
    return {frozenset(c) for c in strongly_connected_components(graph)}


def test_empty():
    assert strongly_connected_components(DiGraph()) == []


def test_single_node():
    g = DiGraph()
    g.add_node("a")
    assert _scc_sets(g) == {frozenset({"a"})}


def test_two_node_cycle():
    g = DiGraph()
    g.add_edges([("a", "b"), ("b", "a")])
    assert _scc_sets(g) == {frozenset({"a", "b"})}


def test_chain_is_singletons():
    g = DiGraph()
    g.add_edges([(1, 2), (2, 3), (3, 4)])
    assert _scc_sets(g) == {frozenset({n}) for n in (1, 2, 3, 4)}


def test_classic_example():
    # Two 3-cycles connected by a bridge, plus a tail.
    g = DiGraph()
    g.add_edges([
        ("a", "b"), ("b", "c"), ("c", "a"),
        ("c", "d"),
        ("d", "e"), ("e", "f"), ("f", "d"),
        ("f", "g"),
    ])
    assert _scc_sets(g) == {
        frozenset({"a", "b", "c"}),
        frozenset({"d", "e", "f"}),
        frozenset({"g"}),
    }


def test_reverse_topological_emission_order():
    g = DiGraph()
    g.add_edges([("a", "b"), ("b", "c")])
    comps = strongly_connected_components(g)
    # Every edge between distinct components goes from later-emitted to
    # earlier-emitted.
    index = {}
    for i, comp in enumerate(comps):
        for node in comp:
            index[node] = i
    for src, dst in g.edges():
        if index[src] != index[dst]:
            assert index[src] > index[dst]


def test_self_loop_is_own_component():
    g = DiGraph()
    g.add_edge("x", "x")
    g.add_node("y")
    assert _scc_sets(g) == {frozenset({"x"}), frozenset({"y"})}


def test_component_map_consistent():
    g = DiGraph()
    g.add_edges([(1, 2), (2, 1), (2, 3)])
    mapping = component_map(g)
    assert mapping[1] == mapping[2]
    assert mapping[3] != mapping[1]


def test_large_path_no_recursion_error():
    # Iterative Tarjan must handle paths far beyond the recursion limit.
    g = DiGraph()
    n = 5000
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    comps = strongly_connected_components(g)
    assert len(comps) == n


def test_large_cycle():
    g = DiGraph()
    n = 3000
    for i in range(n):
        g.add_edge(i, (i + 1) % n)
    comps = strongly_connected_components(g)
    assert len(comps) == 1
    assert len(comps[0]) == n
