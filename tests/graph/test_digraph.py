"""Unit tests for the DiGraph container."""

import pytest

from repro.graph import DiGraph


def test_empty_graph():
    g = DiGraph()
    assert len(g) == 0
    assert g.node_count == 0
    assert g.edge_count == 0
    assert list(g.nodes()) == []
    assert list(g.edges()) == []


def test_add_node_idempotent():
    g = DiGraph()
    g.add_node("a")
    g.add_node("a")
    assert g.node_count == 1
    assert "a" in g


def test_add_edge_creates_endpoints():
    g = DiGraph()
    g.add_edge(1, 2)
    assert 1 in g and 2 in g
    assert g.has_edge(1, 2)
    assert not g.has_edge(2, 1)
    assert g.edge_count == 1


def test_parallel_edges_collapse():
    g = DiGraph()
    g.add_edge("a", "b")
    g.add_edge("a", "b")
    assert g.edge_count == 1


def test_self_loop_allowed():
    g = DiGraph()
    g.add_edge("x", "x")
    assert g.has_edge("x", "x")
    assert g.out_degree("x") == 1
    assert g.in_degree("x") == 1


def test_successors_predecessors():
    g = DiGraph()
    g.add_edges([("a", "b"), ("a", "c"), ("b", "c")])
    assert g.successors("a") == {"b", "c"}
    assert g.predecessors("c") == {"a", "b"}
    assert g.out_degree("a") == 2
    assert g.in_degree("a") == 0


def test_remove_edge():
    g = DiGraph()
    g.add_edge("a", "b")
    g.remove_edge("a", "b")
    assert not g.has_edge("a", "b")
    assert g.edge_count == 0
    assert "a" in g and "b" in g


def test_remove_missing_edge_raises():
    g = DiGraph()
    g.add_node("a")
    with pytest.raises(KeyError):
        g.remove_edge("a", "a")


def test_remove_node_removes_incident_edges():
    g = DiGraph()
    g.add_edges([("a", "b"), ("b", "c"), ("c", "b")])
    g.remove_node("b")
    assert "b" not in g
    assert g.edge_count == 0
    assert g.node_count == 2


def test_remove_missing_node_raises():
    g = DiGraph()
    with pytest.raises(KeyError):
        g.remove_node("nope")


def test_copy_is_independent():
    g = DiGraph()
    g.add_edge(1, 2)
    h = g.copy()
    h.add_edge(2, 3)
    assert not g.has_edge(2, 3)
    assert h.has_edge(1, 2)


def test_reversed():
    g = DiGraph()
    g.add_edges([(1, 2), (2, 3)])
    r = g.reversed()
    assert r.has_edge(2, 1)
    assert r.has_edge(3, 2)
    assert not r.has_edge(1, 2)
    assert r.node_count == 3


def test_subgraph_induced():
    g = DiGraph()
    g.add_edges([(1, 2), (2, 3), (3, 1), (1, 4)])
    s = g.subgraph([1, 2, 4])
    assert s.has_edge(1, 2)
    assert s.has_edge(1, 4)
    assert not s.has_edge(2, 3)
    assert 3 not in s


def test_subgraph_ignores_unknown_nodes():
    g = DiGraph()
    g.add_edge(1, 2)
    s = g.subgraph([1, 2, 99])
    assert 99 not in s
    assert s.node_count == 2


def test_iteration_order_is_insertion_order():
    g = DiGraph()
    for n in ["c", "a", "b"]:
        g.add_node(n)
    assert list(g.nodes()) == ["c", "a", "b"]


def test_repr_mentions_counts():
    g = DiGraph()
    g.add_edge(1, 2)
    assert "nodes=2" in repr(g)
    assert "edges=1" in repr(g)


def test_hashable_tuple_nodes():
    g = DiGraph()
    g.add_edge((0, 1), (1, 0))
    assert g.has_edge((0, 1), (1, 0))
