"""Tests for graph condensation."""

from repro.graph import DiGraph, condensation, is_acyclic


def test_dag_condensation_is_isomorphic():
    g = DiGraph()
    g.add_edges([(1, 2), (2, 3)])
    c = condensation(g)
    assert len(c.components) == 3
    assert c.dag.edge_count == 2


def test_collapses_cycles():
    g = DiGraph()
    g.add_edges([("a", "b"), ("b", "a"), ("b", "c"), ("c", "d"), ("d", "c")])
    c = condensation(g)
    assert len(c.components) == 2
    assert c.index_of["a"] == c.index_of["b"]
    assert c.index_of["c"] == c.index_of["d"]
    assert c.index_of["a"] != c.index_of["c"]
    ci, cj = c.index_of["a"], c.index_of["c"]
    assert c.dag.has_edge(ci, cj)


def test_condensation_always_acyclic():
    g = DiGraph()
    g.add_edges([
        (0, 1), (1, 0),
        (1, 2), (2, 3), (3, 2),
        (3, 4), (4, 5), (5, 4), (5, 0),
    ])
    c = condensation(g)
    assert is_acyclic(c.dag)


def test_no_self_edges_in_dag():
    g = DiGraph()
    g.add_edges([(1, 2), (2, 1), (1, 1)])
    c = condensation(g)
    ci = c.index_of[1]
    assert not c.dag.has_edge(ci, ci)


def test_component_of():
    g = DiGraph()
    g.add_edges([("x", "y"), ("y", "x"), ("y", "z")])
    c = condensation(g)
    assert set(c.component_of("x")) == {"x", "y"}
    assert set(c.component_of("z")) == {"z"}


def test_index_reverse_topological():
    # Tarjan order: edge i -> j in the DAG implies i > j.
    g = DiGraph()
    g.add_edges([("a", "b"), ("b", "c"), ("a", "c")])
    c = condensation(g)
    for i, j in c.dag.edges():
        assert i > j
