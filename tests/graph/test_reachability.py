"""Tests for reachability and transitive closure."""

import pytest

from repro.graph import (
    DiGraph,
    TransitiveClosure,
    ancestors,
    is_reachable,
    reachable_from,
    reachable_from_any,
    transitive_closure_sets,
)


@pytest.fixture
def diamond():
    g = DiGraph()
    g.add_edges([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
    return g


def test_reachable_from(diamond):
    assert reachable_from(diamond, "a") == {"b", "c", "d"}
    assert reachable_from(diamond, "b") == {"d"}
    assert reachable_from(diamond, "d") == set()


def test_reachable_excludes_self_without_cycle(diamond):
    assert "a" not in reachable_from(diamond, "a")


def test_reachable_includes_self_on_cycle():
    g = DiGraph()
    g.add_edges([(1, 2), (2, 1)])
    assert reachable_from(g, 1) == {1, 2}


def test_is_reachable(diamond):
    assert is_reachable(diamond, "a", "d")
    assert not is_reachable(diamond, "d", "a")
    assert not is_reachable(diamond, "b", "c")


def test_is_reachable_missing_nodes():
    g = DiGraph()
    g.add_node("a")
    assert not is_reachable(g, "a", "zzz")
    assert not is_reachable(g, "zzz", "a")


def test_is_reachable_self_needs_cycle():
    g = DiGraph()
    g.add_node("a")
    assert not is_reachable(g, "a", "a")
    g.add_edge("a", "a")
    assert is_reachable(g, "a", "a")


def test_ancestors(diamond):
    assert ancestors(diamond, "d") == {"a", "b", "c"}
    assert ancestors(diamond, "a") == set()


def test_reachable_from_any(diamond):
    out = reachable_from_any(diamond, ["b", "c"])
    assert out == {"b", "c", "d"}  # sources included


class TestTransitiveClosure:
    def test_matches_bfs_on_dag(self, diamond):
        tc = TransitiveClosure(diamond)
        for src in diamond.nodes():
            assert tc.descendants(src) == reachable_from(diamond, src)

    def test_ordered(self, diamond):
        tc = TransitiveClosure(diamond)
        assert tc.ordered("a", "d")
        assert not tc.ordered("d", "a")
        assert not tc.ordered("b", "c")

    def test_comparable(self, diamond):
        tc = TransitiveClosure(diamond)
        assert tc.comparable("a", "d")
        assert tc.comparable("d", "a")
        assert not tc.comparable("b", "c")

    def test_cycle_members_reach_each_other(self):
        g = DiGraph()
        g.add_edges([(1, 2), (2, 3), (3, 1), (3, 4)])
        tc = TransitiveClosure(g)
        for a in (1, 2, 3):
            for b in (1, 2, 3):
                assert tc.ordered(a, b)  # including self via the cycle
        assert tc.ordered(1, 4)
        assert not tc.ordered(4, 1)

    def test_self_not_ordered_without_cycle(self, diamond):
        tc = TransitiveClosure(diamond)
        assert not tc.ordered("a", "a")

    def test_self_loop(self):
        g = DiGraph()
        g.add_edge("x", "x")
        tc = TransitiveClosure(g)
        assert tc.ordered("x", "x")

    def test_matches_bfs_on_cyclic_graph(self):
        g = DiGraph()
        g.add_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3), (1, 5)])
        tc = TransitiveClosure(g)
        for src in g.nodes():
            assert tc.descendants(src) == reachable_from(g, src)


def test_transitive_closure_sets(diamond):
    sets = transitive_closure_sets(diamond)
    assert sets["a"] == {"b", "c", "d"}
    assert sets["d"] == set()


class TestLargeGraphClosure:
    """The closure switches to packed numpy rows above SMALL nodes;
    both implementations must agree with BFS."""

    def _ladder(self, n):
        g = DiGraph()
        for i in range(n - 1):
            g.add_edge(i, i + 1)
            if i % 7 == 0 and i + 10 < n:
                g.add_edge(i, i + 10)
        # a few back edges to create cycles
        for i in range(50, n, 211):
            g.add_edge(i, i - 50)
        return g

    def test_numpy_path_matches_bfs(self):
        n = TransitiveClosure.SMALL + 100
        g = self._ladder(n)
        tc = TransitiveClosure(g)
        assert not tc._small
        import random
        rng = random.Random(0)
        for _ in range(300):
            a, b = rng.randrange(n), rng.randrange(n)
            assert tc.ordered(a, b) == is_reachable(g, a, b), (a, b)

    def test_numpy_descendants(self):
        n = TransitiveClosure.SMALL + 10
        g = self._ladder(n)
        tc = TransitiveClosure(g)
        for node in (0, 5, n - 1):
            assert tc.descendants(node) == reachable_from(g, node)

    def test_small_large_boundary_agree(self):
        # same graph evaluated through both strategies
        g = self._ladder(200)
        small = TransitiveClosure(g)
        assert small._small
        saved = TransitiveClosure.SMALL
        try:
            TransitiveClosure.SMALL = 10
            large = TransitiveClosure(g)
            assert not large._small
        finally:
            TransitiveClosure.SMALL = saved
        for a in range(0, 200, 17):
            for b in range(0, 200, 13):
                assert small.ordered(a, b) == large.ordered(a, b)
