"""Tests for topological sorting and cycle detection."""

import pytest

from repro.graph import CycleError, DiGraph, find_cycle, is_acyclic, topological_sort


def _assert_valid_topo(graph, order):
    position = {node: i for i, node in enumerate(order)}
    assert sorted(map(str, order)) == sorted(map(str, graph.nodes()))
    for src, dst in graph.edges():
        assert position[src] < position[dst]


def test_empty():
    assert topological_sort(DiGraph()) == []


def test_chain():
    g = DiGraph()
    g.add_edges([(1, 2), (2, 3)])
    assert topological_sort(g) == [1, 2, 3]


def test_diamond_valid():
    g = DiGraph()
    g.add_edges([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
    _assert_valid_topo(g, topological_sort(g))


def test_cycle_raises():
    g = DiGraph()
    g.add_edges([(1, 2), (2, 1)])
    with pytest.raises(CycleError):
        topological_sort(g)


def test_self_loop_raises():
    g = DiGraph()
    g.add_edge("a", "a")
    with pytest.raises(CycleError):
        topological_sort(g)


def test_is_acyclic():
    g = DiGraph()
    g.add_edges([(1, 2), (2, 3)])
    assert is_acyclic(g)
    g.add_edge(3, 1)
    assert not is_acyclic(g)


def test_deterministic_order():
    def build():
        g = DiGraph()
        g.add_edges([("a", "x"), ("a", "y"), ("a", "z")])
        return g

    assert topological_sort(build()) == topological_sort(build())


class TestFindCycle:
    def test_acyclic_returns_none(self):
        g = DiGraph()
        g.add_edges([(1, 2), (2, 3), (1, 3)])
        assert find_cycle(g) is None

    def test_finds_simple_cycle(self):
        g = DiGraph()
        g.add_edges([(1, 2), (2, 3), (3, 1)])
        cycle = find_cycle(g)
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        for a, b in zip(cycle, cycle[1:]):
            assert g.has_edge(a, b)

    def test_finds_self_loop(self):
        g = DiGraph()
        g.add_edge("s", "s")
        cycle = find_cycle(g)
        assert cycle == ["s", "s"]

    def test_cycle_reachable_only_from_tail(self):
        g = DiGraph()
        g.add_edges([("start", "a"), ("a", "b"), ("b", "c"), ("c", "a")])
        cycle = find_cycle(g)
        assert cycle is not None
        assert set(cycle) <= {"a", "b", "c"}
