"""Bounded-queue kernel tests."""

import pytest

from repro.core.detector import PostMortemDetector
from repro.core.scp import check_condition_34
from repro.machine.models import ALL_MODEL_NAMES, make_model
from repro.machine.propagation import StubbornPropagation
from repro.machine.simulator import run_program
from repro.programs.queue import bounded_queue_program, expected_checksum_total

DET = PostMortemDetector()


class TestLockedQueue:
    @pytest.mark.parametrize("model", ALL_MODEL_NAMES)
    def test_fifo_accounting_balances(self, model):
        producers, consumers, items = 2, 2, 3
        program = bounded_queue_program(producers, consumers, items)
        for seed in range(3):
            result = run_program(
                program, make_model(model), seed=seed, max_steps=400_000
            )
            assert result.completed, (model, seed)
            base = result.symbols.addr_of("sum")
            total = sum(
                result.final_memory[base + c] for c in range(consumers)
            )
            assert total == expected_checksum_total(producers, items)
            # queue drained exactly
            assert result.value_of("count") == 0
            assert result.value_of("head") == result.value_of("tail")

    def test_race_free(self):
        program = bounded_queue_program(2, 1, 2)
        for seed in range(3):
            result = run_program(
                program, make_model("WO"), seed=seed, max_steps=400_000,
                propagation=StubbornPropagation(),
            )
            assert result.completed
            assert DET.analyze_execution(result).race_free, seed
            assert not result.stale_reads

    def test_single_producer_single_consumer(self):
        program = bounded_queue_program(1, 1, 4)
        result = run_program(program, make_model("RCsc"), seed=7,
                             max_steps=400_000)
        assert result.completed
        base = result.symbols.addr_of("sum")
        assert result.final_memory[base] == expected_checksum_total(1, 4)

    def test_uneven_split_rejected(self):
        with pytest.raises(ValueError, match="divide evenly"):
            bounded_queue_program(1, 2, 3)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            bounded_queue_program(4, 2, 8, capacity=16)


class TestBuggyQueue:
    def test_races_detected(self):
        program = bounded_queue_program(2, 2, 3, locked=False)
        result = run_program(
            program, make_model("WO"), seed=3, max_steps=20_000
        )
        report = DET.analyze_execution(result)
        assert not report.race_free
        assert report.first_partitions

    def test_condition_34_holds_even_mid_flight(self):
        program = bounded_queue_program(2, 2, 3, locked=False)
        result = run_program(
            program, make_model("WO"), seed=3, max_steps=5_000
        )
        assert check_condition_34(result).ok

    def test_queue_state_races_in_first_partition(self):
        program = bounded_queue_program(2, 2, 3, locked=False)
        result = run_program(
            program, make_model("SC"), seed=1, max_steps=20_000
        )
        report = DET.analyze_execution(result)
        assert not report.race_free
        first_locs = {
            report.trace.addr_name(a)
            for p in report.first_partitions
            for race in p.data_races
            for a in race.locations
        }
        # the first races involve the unprotected queue metadata/buffer
        assert first_locs & {"head", "tail", "count"} or any(
            name.startswith("buf[") for name in first_locs
        )
