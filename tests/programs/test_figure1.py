"""Figure 1 program tests."""

from repro.core.detector import PostMortemDetector
from repro.machine.models import ALL_MODEL_NAMES, make_model
from repro.machine.simulator import run_program
from repro.programs.figure1 import figure1a_program, figure1b_program


def test_figure1a_shape():
    program = figure1a_program()
    assert program.processor_count == 2
    assert program.symbols.addr_of("x") == 0
    assert program.symbols.addr_of("y") == 1


def test_figure1a_races_under_every_model_and_seed():
    det = PostMortemDetector()
    for model in ALL_MODEL_NAMES:
        for seed in range(4):
            result = run_program(figure1a_program(), make_model(model), seed=seed)
            assert result.completed
            report = det.analyze_execution(result)
            assert not report.race_free, (model, seed)


def test_figure1b_race_free_under_every_model_and_seed():
    det = PostMortemDetector()
    for model in ALL_MODEL_NAMES:
        for seed in range(4):
            result = run_program(figure1b_program(), make_model(model), seed=seed)
            assert result.completed
            report = det.analyze_execution(result)
            assert report.race_free, (model, seed)
            assert not result.stale_reads, (model, seed)


def test_figure1b_reader_sees_writes():
    result = run_program(figure1b_program(), make_model("WO"), seed=0)
    reads = [op for op in result.operations if op.is_data and op.is_read]
    assert {op.value for op in reads} == {1}


def test_figure1b_lock_initially_held():
    program = figure1b_program()
    s = program.symbols.addr_of("s")
    assert program.initial_value(s) == 1
