"""Work-queue (Figure 2) program tests."""

import pytest

from repro.core.detector import PostMortemDetector
from repro.machine.models import WEAK_MODEL_NAMES, make_model
from repro.machine.simulator import run_program
from repro.programs.workqueue import (
    WorkQueueParams,
    buggy_workqueue_program,
    fixed_workqueue_program,
    run_figure2,
)


class TestParams:
    def test_defaults_match_paper(self):
        p = WorkQueueParams()
        assert p.stale_addr == 37
        assert p.enqueued_addr == 100
        assert p.region_size == 200

    def test_region_size_covers_stale_overlap(self):
        p = WorkQueueParams(stale_addr=150, enqueued_addr=10,
                            work_len=100, region_len=50)
        assert p.region_size == 250


class TestDeterministicFigure2:
    def test_reproduces_stale_dequeue(self, figure2_result):
        assert figure2_result.completed
        stale = figure2_result.stale_reads
        assert len(stale) == 1
        op = stale[0]
        assert figure2_result.addr_name(op.addr) == "Q"
        assert op.value == 37  # the old queue contents

    def test_qempty_read_fresh(self, figure2_result):
        qe = figure2_result.symbols.addr_of("Q") + 1  # QEmpty follows Q
        reads = [
            op for op in figure2_result.per_proc[1]
            if op.is_read and figure2_result.addr_name(op.addr) == "QEmpty"
        ]
        assert len(reads) == 1
        assert reads[0].value == 0
        assert not reads[0].stale

    def test_p2_worked_on_overlapping_region(self, figure2_result):
        symbols = figure2_result.symbols
        p2_writes = {
            op.addr for op in figure2_result.per_proc[1]
            if op.is_write and op.is_data
        }
        region = symbols.addr_of("region")
        # P2 worked 37..136 relative to region base: overlap with P3's
        # region 0..99 on 37..99.
        assert region + 37 in p2_writes
        assert region + 99 in p2_writes
        assert region + 136 in p2_writes

    def test_works_under_all_weak_models(self):
        for model in WEAK_MODEL_NAMES:
            result = run_figure2(make_model(model))
            assert result.completed
            assert len(result.stale_reads) == 1, model

    def test_sc_never_dequeues_stale(self):
        for seed in range(6):
            result = run_program(
                buggy_workqueue_program(), make_model("SC"), seed=seed
            )
            q_reads = [
                op for op in result.per_proc[1]
                if op.is_read and result.addr_name(op.addr) == "Q"
            ]
            for op in q_reads:
                assert op.value in (37, 100)
                assert not op.stale


class TestFixedVariant:
    @pytest.mark.parametrize("model", ("SC",) + WEAK_MODEL_NAMES)
    def test_race_free(self, model):
        det = PostMortemDetector()
        for seed in range(3):
            result = run_program(
                fixed_workqueue_program(), make_model(model), seed=seed
            )
            assert result.completed
            assert det.analyze_execution(result).race_free, (model, seed)
            assert not result.stale_reads

    def test_locks_present(self):
        from repro.machine.isa import Opcode
        program = fixed_workqueue_program()
        for thread in program.threads[:2]:
            opcodes = [i.opcode for i in thread.instructions]
            assert Opcode.TEST_AND_SET in opcodes


def test_buggy_program_has_no_test_and_set():
    from repro.machine.isa import Opcode
    program = buggy_workqueue_program()
    for thread in program.threads:
        opcodes = [i.opcode for i in thread.instructions]
        assert Opcode.TEST_AND_SET not in opcodes


def test_small_params_still_overlap():
    params = WorkQueueParams(stale_addr=2, enqueued_addr=6,
                             region_len=6, work_len=6)
    from repro.programs.workqueue import figure2_weak_setup
    result = figure2_weak_setup(make_model("WO"), params).run()
    assert result.completed
    assert len(result.stale_reads) == 1
    report = PostMortemDetector().analyze_execution(result)
    assert not report.race_free
    assert len(report.suppressed_races) >= 1
