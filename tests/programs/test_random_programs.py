"""Random program generator tests."""

import pytest

from repro.core.detector import PostMortemDetector
from repro.machine.isa import Opcode
from repro.machine.models import make_model
from repro.machine.simulator import run_program
from repro.programs.random_programs import (
    random_drf_program,
    random_program_suite,
    random_racy_program,
)


def _opcode_stream(program):
    return [
        i.opcode for thread in program.threads for i in thread.instructions
    ]


def test_deterministic_generation():
    a = random_drf_program(7)
    b = random_drf_program(7)
    assert _opcode_stream(a) == _opcode_stream(b)


def test_different_seeds_differ():
    streams = {tuple(_opcode_stream(random_drf_program(s))) for s in range(10)}
    assert len(streams) > 1


def test_drf_programs_have_locks_around_shared_access():
    det = PostMortemDetector()
    for seed in range(10):
        prog = random_drf_program(seed)
        result = run_program(prog, make_model("SC"), seed=seed)
        assert result.completed
        assert det.analyze_execution(result).race_free, seed


def test_racy_programs_race_sometimes():
    det = PostMortemDetector()
    racy_count = 0
    for seed in range(15):
        prog = random_racy_program(seed, race_prob=0.8)
        result = run_program(prog, make_model("SC"), seed=seed)
        if not det.analyze_execution(result).race_free:
            racy_count += 1
    assert racy_count > 5


def test_race_prob_validation():
    with pytest.raises(ValueError):
        random_racy_program(0, race_prob=0.0)
    with pytest.raises(ValueError):
        random_racy_program(0, race_prob=1.5)


def test_suite_generation():
    suite = random_program_suite(100, 5, racy=False)
    assert len(suite) == 5
    assert all(p.processor_count == 3 for p in suite)


def test_kwargs_forwarded():
    prog = random_drf_program(3, processors=5, ops_per_thread=2)
    assert prog.processor_count == 5


def test_programs_terminate_under_all_models():
    for seed in range(5):
        prog = random_racy_program(seed)
        for model in ("SC", "WO", "RCsc"):
            result = run_program(prog, make_model(model), seed=seed)
            assert result.completed, (seed, model)


class TestFlagSyncGenerator:
    def test_deterministic(self):
        from repro.programs.random_programs import random_flagsync_program
        a = random_flagsync_program(5)
        b = random_flagsync_program(5)
        assert _opcode_stream(a) == _opcode_stream(b)

    def test_race_free_on_all_weak_models(self):
        from repro.core.detector import PostMortemDetector
        from repro.machine.propagation import StubbornPropagation
        from repro.programs.random_programs import random_flagsync_program
        det = PostMortemDetector()
        for seed in range(6):
            prog = random_flagsync_program(seed)
            for model in ("WO", "RCsc", "DRF1"):
                result = run_program(
                    prog, make_model(model), seed=seed,
                    propagation=StubbornPropagation(),
                )
                assert result.completed, (seed, model)
                assert not result.stale_reads, (seed, model)
                assert det.analyze_execution(result).race_free, (seed, model)

    def test_no_test_and_set_used(self):
        from repro.programs.random_programs import random_flagsync_program
        prog = random_flagsync_program(3)
        assert Opcode.TEST_AND_SET not in _opcode_stream(prog)
        assert Opcode.REL_WRITE in _opcode_stream(prog)

    def test_validation(self):
        import pytest
        from repro.programs.random_programs import random_flagsync_program
        with pytest.raises(ValueError):
            random_flagsync_program(0, stages=1)
