"""Kernel workload tests: semantic correctness plus race status."""

import pytest

from repro.core.detector import PostMortemDetector
from repro.machine.models import ALL_MODEL_NAMES, make_model
from repro.machine.simulator import run_program
from repro.programs.kernels import (
    fanin_barrier_program,
    independent_work_program,
    locked_counter_program,
    producer_consumer_program,
    racy_counter_program,
    region_then_lock_program,
    single_race_program,
)

DET = PostMortemDetector()


class TestLockedCounter:
    @pytest.mark.parametrize("model", ALL_MODEL_NAMES)
    def test_no_lost_updates(self, model):
        result = run_program(
            locked_counter_program(3, 4), make_model(model), seed=9
        )
        assert result.completed
        assert result.value_of("counter") == 12

    def test_race_free(self):
        for seed in range(4):
            result = run_program(
                locked_counter_program(2, 3), make_model("WO"), seed=seed
            )
            assert DET.analyze_execution(result).race_free

    def test_validation(self):
        with pytest.raises(ValueError):
            locked_counter_program(0, 1)


class TestRacyCounter:
    def test_races_detected(self):
        result = run_program(racy_counter_program(2, 2), make_model("SC"), seed=0)
        assert not DET.analyze_execution(result).race_free

    def test_can_lose_updates_on_sc(self):
        lost = False
        for seed in range(20):
            result = run_program(
                racy_counter_program(3, 4), make_model("SC"), seed=seed
            )
            if result.value_of("counter") < 12:
                lost = True
                break
        assert lost

    def test_validation(self):
        with pytest.raises(ValueError):
            racy_counter_program(1, 0)


class TestProducerConsumer:
    @pytest.mark.parametrize("model", ALL_MODEL_NAMES)
    def test_consumer_sees_all_items(self, model):
        items = 6
        result = run_program(
            producer_consumer_program(items), make_model(model), seed=4
        )
        assert result.completed
        expected = sum(10 + i for i in range(items))
        assert result.value_of("consumed") == expected

    def test_race_free(self):
        for seed in range(4):
            result = run_program(
                producer_consumer_program(4), make_model("DRF1"), seed=seed
            )
            assert DET.analyze_execution(result).race_free
            assert not result.stale_reads

    def test_validation(self):
        with pytest.raises(ValueError):
            producer_consumer_program(0)


class TestIndependentWork:
    def test_no_conflicts_at_all(self):
        result = run_program(
            independent_work_program(3, 4), make_model("WO"), seed=0
        )
        report = DET.analyze_execution(result)
        assert report.races == []  # not even sync races

    def test_final_values(self):
        result = run_program(
            independent_work_program(2, 2), make_model("SC"), seed=0
        )
        region = result.symbols.addr_of("region")
        assert result.final_memory[region + 0] == 1      # proc 0 adds 1
        assert result.final_memory[region + 2] == 2      # proc 1 adds 2


class TestSingleRace:
    def test_exactly_one_race(self):
        result = run_program(single_race_program(), make_model("SC"), seed=0)
        report = DET.analyze_execution(result)
        assert len(report.data_races) == 1
        assert len(report.first_partitions) == 1


class TestRegionThenLock:
    @pytest.mark.parametrize("model", ALL_MODEL_NAMES)
    def test_summary_correct(self, model):
        result = run_program(
            region_then_lock_program(2, 3, 2), make_model(model), seed=6
        )
        assert result.completed
        assert result.value_of("summary") == 4  # 2 procs * 2 rounds

    def test_race_free(self):
        result = run_program(
            region_then_lock_program(2, 3, 2), make_model("WO"), seed=1
        )
        assert DET.analyze_execution(result).race_free

    def test_rcsc_cheaper_than_wo(self):
        prog = region_then_lock_program(3, 8, 3)
        wo = run_program(prog, make_model("WO"), seed=5)
        rc = run_program(prog, make_model("RCsc"), seed=5)
        sc = run_program(prog, make_model("SC"), seed=5)
        assert rc.total_stall_cycles < wo.total_stall_cycles
        assert wo.total_stall_cycles < sc.total_stall_cycles

    def test_validation(self):
        with pytest.raises(ValueError):
            region_then_lock_program(0)


class TestFaninBarrier:
    @pytest.mark.parametrize("model", ALL_MODEL_NAMES)
    def test_result_combines_all_workers(self, model):
        workers, cells = 2, 3
        result = run_program(
            fanin_barrier_program(workers, cells), make_model(model), seed=8
        )
        assert result.completed
        expected = sum((w + 1) * cells for w in range(workers))
        assert result.value_of("result") == expected

    def test_race_free(self):
        for seed in range(3):
            result = run_program(
                fanin_barrier_program(2, 2), make_model("RCsc"), seed=seed
            )
            assert DET.analyze_execution(result).race_free
            assert not result.stale_reads

    def test_validation(self):
        with pytest.raises(ValueError):
            fanin_barrier_program(0)
