"""Litmus-test program tests: the store-buffering separation."""

import pytest

from repro.analysis.exhaustive import is_program_data_race_free
from repro.core.detector import PostMortemDetector
from repro.core.scp import check_condition_34
from repro.machine.models import ALL_MODEL_NAMES, WEAK_MODEL_NAMES, make_model
from repro.machine.propagation import StubbornPropagation
from repro.machine.simulator import run_program
from repro.programs.litmus import (
    both_entered,
    count_sb_violations,
    locked_mutual_exclusion_program,
    run_store_buffering_witness,
    store_buffering_program,
)

DET = PostMortemDetector()


class TestStoreBuffering:
    def test_sc_never_both_enter(self):
        assert count_sb_violations(make_model("SC"), seeds=60) == 0

    @pytest.mark.parametrize("model", WEAK_MODEL_NAMES)
    def test_weak_models_admit_both_enter(self, model):
        witness = run_store_buffering_witness(make_model(model))
        assert both_entered(witness)

    def test_sc_witness_schedule_fails_to_violate(self):
        witness = run_store_buffering_witness(make_model("SC"))
        assert not both_entered(witness)

    def test_program_not_drf(self):
        assert not is_program_data_race_free(store_buffering_program())

    def test_detector_flags_races_on_weak_witness(self):
        witness = run_store_buffering_witness(make_model("WO"))
        report = DET.analyze_execution(witness)
        assert not report.race_free
        # the flag accesses race
        names = {
            report.trace.addr_name(a)
            for race in report.data_races
            for a in race.locations
        }
        assert {"flag0", "flag1"} <= names

    @pytest.mark.parametrize("model", WEAK_MODEL_NAMES)
    def test_condition_34_still_holds(self, model):
        """Even in the SC-violating outcome, the weak machine preserved
        an SCP accounting for every race (Theorem 3.5)."""
        witness = run_store_buffering_witness(make_model(model))
        assert check_condition_34(witness).ok

    def test_stale_reads_present_in_weak_witness(self):
        witness = run_store_buffering_witness(make_model("WO"))
        stale_names = {
            witness.addr_name(op.addr) for op in witness.stale_reads
        }
        assert stale_names == {"flag0", "flag1"}


class TestLockedMutualExclusion:
    @pytest.mark.parametrize("model", ALL_MODEL_NAMES)
    def test_never_overlaps(self, model):
        for seed in range(6):
            result = run_program(
                locked_mutual_exclusion_program(), make_model(model),
                seed=seed, propagation=StubbornPropagation(),
            )
            assert result.completed
            assert result.value_of("overlap") == 0, (model, seed)

    def test_race_free_and_drf(self):
        result = run_program(
            locked_mutual_exclusion_program(), make_model("WO"), seed=2
        )
        assert DET.analyze_execution(result).race_free
        assert is_program_data_race_free(locked_mutual_exclusion_program())


class TestIRIW:
    """Independent Reads of Independent Writes: per-reader visibility
    lets two readers observe two writes in opposite orders — no single
    total order (SC) can explain that outcome."""

    def test_sc_never_forbidden(self):
        from repro.programs.litmus import (
            iriw_forbidden_outcome, iriw_program, run_iriw_witness,
        )
        from repro.machine.simulator import run_program as _run
        assert not iriw_forbidden_outcome(run_iriw_witness(make_model("SC")))
        for seed in range(25):
            result = _run(iriw_program(), make_model("SC"), seed=seed)
            assert not iriw_forbidden_outcome(result), seed

    @pytest.mark.parametrize("model", WEAK_MODEL_NAMES)
    def test_weak_models_admit_forbidden(self, model):
        from repro.programs.litmus import (
            iriw_forbidden_outcome, run_iriw_witness,
        )
        result = run_iriw_witness(make_model(model))
        assert result.completed
        assert iriw_forbidden_outcome(result)

    def test_forbidden_outcome_has_no_sc_witness(self):
        """The exhaustive SC-witness search must agree the weak IRIW
        outcome is not sequentially consistent."""
        from repro.analysis.sc_checker import find_sc_witness
        from repro.programs.litmus import (
            iriw_forbidden_outcome, run_iriw_witness,
        )
        result = run_iriw_witness(make_model("WO"))
        assert iriw_forbidden_outcome(result)
        assert find_sc_witness(result.operations) is None

    def test_condition_34_still_holds(self):
        from repro.programs.litmus import run_iriw_witness
        assert check_condition_34(run_iriw_witness(make_model("WO"))).ok

    def test_not_drf(self):
        from repro.programs.litmus import iriw_program
        assert not is_program_data_race_free(iriw_program())


class TestRingFactory:
    def test_ring_distances_symmetric(self):
        from repro.machine.propagation import HomeDirectoryPropagation
        policy = HomeDirectoryPropagation.ring(5, hop_cost=3)
        for u in range(5):
            assert policy.dist[u][u] == 0
            for v in range(5):
                assert policy.dist[u][v] == policy.dist[v][u]
        assert policy.dist[0][1] == 3
        assert policy.dist[0][4] == 3  # wraps around the ring
        assert policy.dist[0][2] == 6

    def test_ring_validation(self):
        from repro.machine.propagation import HomeDirectoryPropagation
        with pytest.raises(ValueError):
            HomeDirectoryPropagation.ring(0)

    def test_condition_34_under_ring_topology(self):
        """Deterministic NUMA propagation is still Condition-3.4
        compliant (flushes are instant)."""
        from repro.machine.propagation import HomeDirectoryPropagation
        from repro.programs.random_programs import random_racy_program
        for seed in range(5):
            prog = random_racy_program(seed, race_prob=0.5)
            result = run_program(
                prog, make_model("WO"), seed=seed,
                propagation=HomeDirectoryPropagation.ring(3),
            )
            assert result.completed
            assert check_condition_34(result).ok, seed


class TestPeterson:
    """Peterson's algorithm: correct under SC (proved exhaustively),
    broken on every weak model (the textbook SC-dependence)."""

    def test_sc_mutual_exclusion_exhaustive(self):
        from repro.analysis.outcomes import enumerate_outcomes
        from repro.programs.litmus import peterson_program
        out = enumerate_outcomes(
            peterson_program(), make_model("SC"), interesting=["overlap"]
        )
        assert out.values_of("overlap") == {(0,)}

    @pytest.mark.parametrize("model", WEAK_MODEL_NAMES)
    def test_weak_models_violate(self, model):
        from repro.programs.litmus import run_peterson_witness
        result = run_peterson_witness(make_model(model))
        assert result.completed
        assert result.value_of("overlap") == 1
        assert result.stale_reads  # the stale flag read caused it

    def test_not_drf(self):
        from repro.analysis.exhaustive import is_program_data_race_free
        from repro.programs.litmus import peterson_program
        assert not is_program_data_race_free(peterson_program())

    def test_detector_points_at_the_protocol_variables(self):
        from repro.programs.litmus import run_peterson_witness
        result = run_peterson_witness(make_model("WO"))
        report = DET.analyze_execution(result)
        assert not report.race_free
        names = {
            report.trace.addr_name(a)
            for p in report.first_partitions
            for race in p.data_races
            for a in race.locations
        }
        assert names & {"flag[0]", "flag[1]", "turn"}

    def test_condition_34_holds(self):
        from repro.programs.litmus import run_peterson_witness
        assert check_condition_34(run_peterson_witness(make_model("WO"))).ok

    def test_sc_random_runs_never_violate(self):
        from repro.programs.litmus import peterson_program
        for seed in range(15):
            result = run_program(
                peterson_program(), make_model("SC"), seed=seed
            )
            assert result.completed
            assert result.value_of("overlap") == 0, seed
