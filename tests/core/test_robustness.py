"""Robustness verdicts: SC justification search over po ∪ rf ∪ co ∪ fr.

Every SC execution must be robust with a witness covering all
operations; the TSO/PSO store-buffering litmus must be non-robust with
the textbook fr-carrying cycle; reports must survive the shared JSON
report protocol byte-for-byte.
"""

from __future__ import annotations

import pytest

import repro
from repro.api import check_robustness as api_check_robustness
from repro.api import report_from_json
from repro.core.robustness import (
    EDGE_KINDS,
    OrderEdge,
    RobustnessReport,
    build_order_graph,
    check_robustness,
)
from repro.machine.models import ALL_MODEL_NAMES, make_model
from repro.machine.simulator import run_program
from repro.programs.figure1 import figure1a_program
from repro.programs.kernels import (
    independent_work_program,
    locked_counter_program,
    racy_counter_program,
    single_race_program,
)
from repro.programs.litmus import store_buffering_program
from repro.trace.build import build_trace

SC_CORPUS = [
    figure1a_program,
    locked_counter_program,
    racy_counter_program,
    single_race_program,
    independent_work_program,
    store_buffering_program,
]


def _sb_tso(seed: int = 3):
    """A store-buffering execution on TSO that actually reorders
    (seed 3 produces the r0=r1=0 weak outcome with one stale read)."""
    result = run_program(store_buffering_program(), make_model("TSO"),
                         seed=seed)
    assert result.stale_reads, "seed expected to produce the weak outcome"
    return result


# ----------------------------------------------------------------------
# SC executions are always robust
# ----------------------------------------------------------------------

class TestSCAlwaysRobust:
    @pytest.mark.parametrize("program", SC_CORPUS,
                             ids=lambda p: p.__name__)
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_sc_corpus_robust_with_full_witness(self, program, seed):
        result = run_program(program(), make_model("SC"), seed=seed)
        report = check_robustness(result)
        assert report.robust
        assert report.verdict == "robust"
        assert report.cycle == []
        # the witness is a permutation of every operation seq
        assert sorted(report.witness) == [
            op.seq for op in result.operations
        ]
        assert report.scp_whole
        assert report.scp_size == len(result.operations)

    def test_stale_free_weak_execution_robust(self):
        """Structural property: without stale reads there are no
        backward fr edges, so the order graph is trivially acyclic."""
        for name in ALL_MODEL_NAMES:
            result = run_program(locked_counter_program(),
                                 make_model(name), seed=1)
            if result.stale_reads:
                continue
            report = check_robustness(result)
            assert report.robust, name


# ----------------------------------------------------------------------
# store buffering under TSO/PSO is non-robust
# ----------------------------------------------------------------------

class TestStoreBufferingNonRobust:
    @pytest.mark.parametrize("model", ["TSO", "PSO"])
    def test_weak_outcome_non_robust(self, model):
        found = False
        for seed in range(16):
            result = run_program(store_buffering_program(),
                                 make_model(model), seed=seed)
            report = check_robustness(result)
            if result.stale_reads and not report.robust:
                found = True
                assert report.verdict == "non-robust"
                assert report.witness == []
                # every violating cycle must pass through fr: po, rf
                # and co all point forward in commit order
                kinds = [edge.kind for edge in report.cycle]
                assert "fr" in kinds
                assert all(kind in EDGE_KINDS for kind in kinds)
                # the cycle is closed and edge-connected
                for a, b in zip(report.cycle,
                                report.cycle[1:] + report.cycle[:1]):
                    assert a.dst == b.src
                # SC prefix is a strict prefix
                assert not report.scp_whole
                assert report.scp_size < report.operation_count
        assert found, f"no weak SB outcome found under {model} in 16 seeds"

    def test_textbook_cycle_shape(self):
        report = check_robustness(_sb_tso())
        assert not report.robust
        assert len(report.cycle) == 4
        assert sorted(e.kind for e in report.cycle) == \
            ["fr", "fr", "po", "po"]

    def test_cross_check_sc_witness_search(self):
        """The value-based SC witness search must agree: the weak SB
        outcome has no SC interleaving at all."""
        from repro.analysis.sc_checker import find_sc_witness
        result = _sb_tso()
        assert find_sc_witness(list(result.operations)) is None
        sc = run_program(store_buffering_program(), make_model("SC"),
                         seed=0)
        assert find_sc_witness(list(sc.operations)) is not None
        assert check_robustness(sc).robust


# ----------------------------------------------------------------------
# order-graph construction
# ----------------------------------------------------------------------

class TestOrderGraph:
    def test_empty_and_single(self):
        graph, labels = build_order_graph([])
        assert len(graph) == 0 and labels == {}
        result = run_program(single_race_program(), make_model("SC"),
                             seed=0)
        one = [result.operations[0]]
        graph, labels = build_order_graph(one)
        assert len(graph) == 1 and labels == {}

    def test_forward_edges_only_fr_backward(self):
        result = _sb_tso()
        graph, labels = build_order_graph(result.operations)
        for (src, dst), kind in labels.items():
            if kind != "fr":
                assert src < dst, (src, dst, kind)

    def test_labels_cover_all_edges(self):
        result = _sb_tso()
        graph, labels = build_order_graph(result.operations)
        for src in graph:
            for dst in graph.successors(src):
                assert (src, dst) in labels


# ----------------------------------------------------------------------
# report protocol
# ----------------------------------------------------------------------

class TestReportProtocol:
    @pytest.mark.parametrize("make_result", [
        lambda: run_program(locked_counter_program(), make_model("SC"),
                            seed=1),
        _sb_tso,
    ], ids=["robust", "non-robust"])
    def test_json_round_trip(self, make_result):
        report = check_robustness(make_result())
        payload = report.to_json()
        assert payload["kind"] == "robustness"
        assert payload["format"] == 1
        clone = RobustnessReport.from_json(payload)
        assert clone.to_json() == payload
        assert clone.robust == report.robust
        assert clone.cycle == report.cycle

    def test_report_from_json_dispatch(self):
        report = check_robustness(_sb_tso())
        clone = report_from_json(report.to_json())
        assert isinstance(clone, RobustnessReport)
        assert clone.to_json() == report.to_json()

    def test_from_json_rejects_wrong_kind(self):
        with pytest.raises(ValueError):
            RobustnessReport.from_json({"kind": "races"})

    def test_format_mentions_cycle_and_prefix(self):
        text = check_robustness(_sb_tso()).format()
        assert "NON-ROBUST" in text
        assert "--fr-->" in text
        assert "SC prefix" in text

    def test_summary_one_liner(self):
        robust = check_robustness(
            run_program(locked_counter_program(), make_model("SC"),
                        seed=1))
        assert "robust" in robust.summary()


# ----------------------------------------------------------------------
# API surface
# ----------------------------------------------------------------------

class TestApiSurface:
    def test_exported_at_top_level(self):
        assert repro.check_robustness is api_check_robustness
        assert repro.RobustnessReport is RobustnessReport

    def test_bare_operation_list(self):
        result = _sb_tso()
        report = check_robustness(list(result.operations))
        assert not report.robust
        assert report.model_name == ""

    def test_api_accepts_execution(self):
        report = api_check_robustness(_sb_tso())
        assert not report.robust
        assert report.model_name == "TSO"

    def test_api_rejects_trace(self):
        trace = build_trace(_sb_tso())
        with pytest.raises(TypeError, match="reads-from"):
            api_check_robustness(trace)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            check_robustness(object())

    def test_order_edge_is_frozen(self):
        edge = OrderEdge(0, 1, "po")
        with pytest.raises(Exception):
            edge.kind = "rf"
