"""Vector-clock hb1 backend tests, including differential equivalence
with the transitive-closure backend."""

import pytest

from repro.core.hb1 import HappensBefore1
from repro.core.hb1_vc import CyclicHB1Error, VectorClockHB1
from repro.machine.models import make_model
from repro.machine.simulator import run_program
from repro.programs.figure1 import figure1b_program
from repro.programs.random_programs import random_racy_program
from repro.programs.workqueue import run_figure2
from repro.trace.build import build_trace


def _assert_backends_agree(trace):
    closure = HappensBefore1(trace)
    vc = VectorClockHB1(trace)
    events = [e.eid for e in trace.all_events()]
    for a in events:
        for b in events:
            if a == b:
                continue
            assert closure.ordered(a, b) == vc.ordered(a, b), (a, b)


def test_agrees_on_figure1b():
    result = run_program(figure1b_program(), make_model("WO"), seed=2)
    _assert_backends_agree(build_trace(result))


def test_agrees_on_figure2(figure2_trace):
    _assert_backends_agree(figure2_trace)


def test_agrees_on_random_programs():
    for seed in range(6):
        prog = random_racy_program(seed, race_prob=0.5)
        result = run_program(prog, make_model("RCsc"), seed=seed)
        _assert_backends_agree(build_trace(result))


def test_clock_components_monotone_per_processor(figure2_trace):
    vc = VectorClockHB1(figure2_trace)
    for proc_events in figure2_trace.events:
        last = None
        for event in proc_events:
            clock = vc.clock_of(event.eid)
            if last is not None:
                assert all(x <= y for x, y in zip(last, clock))
            last = clock


def test_own_component_is_position(figure2_trace):
    vc = VectorClockHB1(figure2_trace)
    for proc_events in figure2_trace.events:
        for event in proc_events:
            assert vc.clock_of(event.eid)[event.eid.proc] == event.eid.pos + 1


def test_cyclic_trace_rejected():
    import tests.core.test_hb1_cycles as cyc
    trace = cyc._cyclic_trace()
    with pytest.raises(CyclicHB1Error):
        VectorClockHB1(trace)


def test_race_detection_same_with_either_backend(figure2_trace):
    """find_races only needs unordered(); plugging the VC backend in by
    duck-typing must give the same race set."""
    from repro.core.races import find_races

    class _Shim:
        """Adapts VectorClockHB1 to the closure-based query interface
        find_races uses (dense-index bulk queries)."""

        def __init__(self, trace):
            self._vc = VectorClockHB1(trace)
            self._events = [e.eid for e in trace.all_events()]
            self._index = {e: i for i, e in enumerate(self._events)}
            self.closure = self

        def index_of(self, eid):
            return self._index[eid]

        def ordered_index(self, i, j):
            return self._vc.ordered(self._events[i], self._events[j])

        def unordered(self, a, b):
            return self._vc.unordered(a, b)

    baseline = find_races(figure2_trace)
    shimmed = find_races(figure2_trace, _Shim(figure2_trace))
    assert [(r.a, r.b, r.locations) for r in baseline] == \
           [(r.a, r.b, r.locations) for r in shimmed]
