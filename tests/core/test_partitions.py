"""Race partitioning and first-partition tests (section 4.2)."""

import pytest

from repro.core.detector import PostMortemDetector
from repro.core.hb1 import HappensBefore1
from repro.core.partitions import partition_races
from repro.core.races import find_races
from repro.machine.models import make_model
from repro.machine.program import ProgramBuilder
from repro.machine.simulator import run_program
from repro.trace.build import build_trace


def _analyze(program, model="SC", seed=0):
    result = run_program(program, make_model(model), seed=seed)
    trace = build_trace(result)
    hb = HappensBefore1(trace)
    races = find_races(trace, hb)
    return trace, races, partition_races(trace, hb, races)


def test_no_races_no_partitions():
    b = ProgramBuilder()
    x = b.var("x")
    with b.thread() as t:
        t.write(x, 1)
    trace, races, analysis = _analyze(b.build())
    assert races == []
    assert analysis.partitions == []
    assert analysis.first_partitions == []


def test_single_race_is_its_own_first_partition():
    b = ProgramBuilder()
    x = b.var("x")
    with b.thread() as t:
        t.write(x, 1)
    with b.thread() as t:
        t.read(x)
    _, races, analysis = _analyze(b.build())
    assert len(analysis.partitions) == 1
    p = analysis.partitions[0]
    assert p.is_first
    assert p.races == races
    assert p.has_data_race


def test_independent_races_both_first():
    b = ProgramBuilder()
    x, y = b.var("x"), b.var("y")
    with b.thread() as t:
        t.write(x, 1)
    with b.thread() as t:
        t.read(x)
    with b.thread() as t:
        t.write(y, 1)
    with b.thread() as t:
        t.read(y)
    _, races, analysis = _analyze(b.build())
    assert len(races) == 2
    assert len(analysis.partitions) == 2
    assert all(p.is_first for p in analysis.partitions)


def test_race_endpoints_share_scc():
    b = ProgramBuilder()
    x = b.var("x")
    with b.thread() as t:
        t.write(x, 1)
    with b.thread() as t:
        t.read(x)
    _, races, analysis = _analyze(b.build())
    race = races[0]
    assert analysis.cond.index_of[race.a] == analysis.cond.index_of[race.b]


def test_figure2_two_partitions_ordered(figure2_report):
    analysis = figure2_report.analysis
    data_partitions = [p for p in analysis.partitions if p.has_data_race]
    assert len(data_partitions) == 2
    first = [p for p in data_partitions if p.is_first]
    non_first = [p for p in data_partitions if not p.is_first]
    assert len(first) == 1
    assert len(non_first) == 1
    assert analysis.precedes(first[0], non_first[0])
    assert not analysis.precedes(non_first[0], first[0])


def test_figure2_first_partition_is_the_queue_race(figure2_report):
    trace = figure2_report.trace
    first = figure2_report.first_partitions[0]
    locations = {
        trace.addr_name(addr)
        for race in first.data_races
        for addr in race.locations
    }
    assert locations == {"Q", "QEmpty"}


def test_figure2_non_first_is_the_region_overlap(figure2_report):
    trace = figure2_report.trace
    suppressed = figure2_report.suppressed_races
    assert suppressed
    for race in suppressed:
        for addr in race.locations:
            assert trace.addr_name(addr).startswith("region[")


def test_partition_of_lookup(figure2_report):
    analysis = figure2_report.analysis
    for partition in analysis.partitions:
        for race in partition.races:
            assert analysis.partition_of(race) is partition
    with pytest.raises(KeyError):
        from repro.core.races import EventRace
        from repro.trace.events import EventId
        analysis.partition_of(
            EventRace(EventId(9, 9), EventId(9, 10), (0,), True)
        )


def test_precedes_irreflexive(figure2_report):
    analysis = figure2_report.analysis
    for p in analysis.partitions:
        assert not analysis.precedes(p, p)


def test_first_races_property(figure2_report):
    analysis = figure2_report.analysis
    first_events = {r for p in analysis.first_partitions for r in p.races}
    assert set(analysis.first_races) == first_events


def test_describe_mentions_tag(figure2_report):
    text = figure2_report.analysis.partitions[0].describe(figure2_report.trace)
    assert "Partition #" in text
    assert ("first" in text) or ("non-first" in text)
