"""VectorClock unit tests."""

import pytest

from repro.core.vector_clock import VectorClock


def test_initial_zero():
    vc = VectorClock(3)
    assert list(vc) == [0, 0, 0]
    assert vc.width == 3


def test_tick():
    vc = VectorClock(2)
    vc.tick(1)
    vc.tick(1)
    assert vc[1] == 2
    assert vc[0] == 0


def test_join_pointwise_max():
    a = VectorClock(3, (1, 5, 2))
    b = VectorClock(3, (4, 2, 2))
    a.join(b)
    assert list(a) == [4, 5, 2]
    assert list(b) == [4, 2, 2]  # other untouched


def test_join_width_mismatch():
    with pytest.raises(ValueError):
        VectorClock(2).join(VectorClock(3))


def test_ticks_length_validation():
    with pytest.raises(ValueError):
        VectorClock(2, (1, 2, 3))


def test_happens_before_strict():
    a = VectorClock(2, (1, 2))
    b = VectorClock(2, (2, 2))
    assert a.happens_before(b)
    assert not b.happens_before(a)
    assert not a.happens_before(a)


def test_concurrent():
    a = VectorClock(2, (2, 0))
    b = VectorClock(2, (0, 2))
    assert a.concurrent_with(b)
    assert b.concurrent_with(a)
    c = VectorClock(2, (3, 3))
    assert not a.concurrent_with(c)


def test_dominates_entry():
    vc = VectorClock(2, (3, 1))
    assert vc.dominates_entry(0, 3)
    assert not vc.dominates_entry(0, 4)


def test_copy_independent():
    a = VectorClock(2, (1, 1))
    b = a.copy()
    b.tick(0)
    assert a[0] == 1


def test_equality_and_hash():
    assert VectorClock(2, (1, 2)) == VectorClock(2, (1, 2))
    assert hash(VectorClock(2, (1, 2))) == hash(VectorClock(2, (1, 2)))
    assert VectorClock(2, (1, 2)) != VectorClock(2, (2, 1))


def test_repr():
    assert repr(VectorClock(2, (1, 2))) == "VC(1, 2)"
