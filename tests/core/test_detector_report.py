"""Detector pipeline and report tests."""

import pytest

from repro.core.detector import PostMortemDetector, detect
from repro.machine.models import make_model
from repro.machine.simulator import run_program
from repro.programs.figure1 import figure1a_program, figure1b_program
from repro.programs.kernels import locked_counter_program
from repro.trace.build import build_trace


def test_detect_accepts_trace_and_result(fig1a_sc_result):
    r1 = detect(fig1a_sc_result)
    r2 = detect(build_trace(fig1a_sc_result))
    assert len(r1.races) == len(r2.races)


def test_detect_rejects_other_types():
    with pytest.raises(TypeError):
        detect(42)


def test_race_free_report(detector):
    result = run_program(locked_counter_program(2, 2), make_model("WO"), seed=1)
    report = detector.analyze_execution(result)
    assert report.race_free
    assert report.execution_was_sequentially_consistent
    assert report.first_partitions == []
    assert report.reported_races == []
    text = report.format()
    assert "No data races detected" in text
    assert "sequentially consistent" in text


def test_racy_report_structure(figure2_report):
    assert not figure2_report.race_free
    assert len(figure2_report.first_partitions) == 1
    assert len(figure2_report.reported_races) == 1
    assert len(figure2_report.suppressed_races) == 1
    assert len(figure2_report.data_races) == 2


def test_report_format_sections(figure2_report):
    text = figure2_report.format()
    assert "First partition" in text
    assert "suppressed" in text
    assert "Q" in text and "QEmpty" in text


def test_report_counts_consistent(figure2_report):
    assert (
        len(figure2_report.reported_races)
        + len(figure2_report.suppressed_races)
        == len(figure2_report.data_races)
    )


def test_sync_races_separated(detector):
    # Two concurrent Unsets: a race, but not a data race.
    from repro.machine.program import ProgramBuilder
    b = ProgramBuilder()
    s = b.var("s")
    with b.thread() as t:
        t.unset(s)
    with b.thread() as t:
        t.unset(s)
    result = run_program(b.build(), make_model("SC"), seed=0)
    report = detector.analyze_execution(result)
    assert report.race_free            # no *data* races
    assert len(report.sync_races) == 1


def test_dot_output(figure2_report):
    dot = figure2_report.to_dot()
    assert dot.startswith("digraph")
    assert "dashed" in dot        # race edges
    assert "dir=" in dot or 'dir="both"' in dot
    assert "partition" in dot     # cluster labels
    assert "first" in dot


def test_dot_without_partitions(figure2_report):
    dot = figure2_report.to_dot(include_partitions=False)
    assert "cluster" not in dot


def test_figure1a_reported_under_every_model(detector):
    for model in ("SC", "WO", "RCsc", "DRF0", "DRF1"):
        result = run_program(figure1a_program(), make_model(model), seed=0)
        report = detector.analyze_execution(result)
        assert not report.race_free, model
        assert len(report.first_partitions) == 1, model


def test_figure1b_clean_under_every_model(detector):
    for model in ("SC", "WO", "RCsc", "DRF0", "DRF1"):
        for seed in range(3):
            result = run_program(figure1b_program(), make_model(model), seed=seed)
            report = detector.analyze_execution(result)
            assert report.race_free, (model, seed)
