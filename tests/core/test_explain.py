"""Race-explanation tests."""

from repro.core.detector import PostMortemDetector
from repro.core.explain import explain_race, explain_report
from repro.machine.models import make_model
from repro.machine.simulator import run_program
from repro.programs.figure1 import figure1a_program
from repro.programs.kernels import locked_counter_program

DET = PostMortemDetector()


def test_first_race_explained_as_first(figure2_report):
    first = figure2_report.reported_races[0]
    explanation = explain_race(figure2_report, first)
    assert explanation.is_first
    assert explanation.root_race is None
    text = explanation.format(figure2_report)
    assert "FIRST" in text
    assert "Theorem 4.2" in text


def test_suppressed_race_gets_a_chain(figure2_report):
    suppressed = figure2_report.suppressed_races[0]
    explanation = explain_race(figure2_report, suppressed)
    assert not explanation.is_first
    assert explanation.root_race == figure2_report.reported_races[0]
    assert explanation.steps
    # chain starts at a root-race endpoint and ends at the suppressed
    # race's endpoint
    assert explanation.steps[0].src in explanation.root_race.events
    assert explanation.steps[-1].dst in suppressed.events


def test_chain_edges_exist_in_gprime(figure2_report):
    suppressed = figure2_report.suppressed_races[0]
    explanation = explain_race(figure2_report, suppressed)
    gprime = figure2_report.analysis.gprime
    for step in explanation.steps:
        assert gprime.has_edge(step.src, step.dst)


def test_chain_kinds_labelled(figure2_report):
    suppressed = figure2_report.suppressed_races[0]
    explanation = explain_race(figure2_report, suppressed)
    kinds = {step.kind for step in explanation.steps}
    assert kinds <= {"po", "so1", "race"}
    text = explanation.format(figure2_report)
    assert "SUPPRESSED" in text
    assert "-->" in text


def test_explain_report_covers_all_races(figure2_report):
    text = explain_report(figure2_report)
    assert text.count("Race <") == len(figure2_report.data_races)
    assert "FIRST" in text and "SUPPRESSED" in text


def test_explain_clean_execution():
    result = run_program(locked_counter_program(2, 2), make_model("WO"), seed=0)
    report = DET.analyze_execution(result)
    assert "nothing to explain" in explain_report(report)


def test_independent_races_all_first():
    result = run_program(figure1a_program(), make_model("SC"), seed=0)
    report = DET.analyze_execution(result)
    text = explain_report(report)
    assert "SUPPRESSED" not in text


def test_labels_truncate_large_sets(figure2_report):
    text = explain_report(figure2_report)
    assert "more" in text  # the 100-location region sets are truncated
    assert len(text) < 4000