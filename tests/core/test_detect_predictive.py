"""Differential guarantees for the predictive backends (SHB + WCP).

The predictive detectors are only trustworthy relative to the paper's
baseline: SHB (Mathur et al. 2018) must report *exactly* the hb1 race
set — its value is the per-race soundness certificates layered on top
— and WCP (Kini et al. 2017) must report a *superset* (the observed
races plus races of critical-section reorderings), with the observed
layer bit-identical to the baseline.  Both must agree with the
baseline on the first reported race, survive cyclic hb1 and a missing
numpy exactly like the postmortem pipeline, and round-trip through the
shared report protocol.
"""

from unittest import mock

import pytest
from hypothesis import given, settings

import repro
from repro import obs
from repro.core import hb1_vc
from repro.core.hb1 import HappensBefore1
from repro.core.hb1_vc import CyclicHB1Error, VectorClockHB1
from repro.core.predictive import (
    SHBDetector,
    SHBReport,
    WCPDetector,
    WCPReport,
    WeakCausallyPrecedes,
)
from repro.core.races import find_races
from repro.machine.models import make_model
from repro.machine.propagation import RandomPropagation, StubbornPropagation
from repro.machine.simulator import run_program
from repro.programs import (
    buggy_workqueue_program,
    figure1a_program,
    figure1b_program,
    iriw_program,
    lock_shadow_program,
    locked_counter_program,
    producer_consumer_program,
    racy_counter_program,
    single_race_program,
)
from repro.trace.build import build_trace

from tests.core.test_hb1_cycles import _cyclic_trace
from tests.properties.test_prop_traces import traces

CORPUS = [
    (lambda: racy_counter_program(3, 3), "WO"),
    (buggy_workqueue_program, "WO"),
    (figure1a_program, "SC"),
    (figure1b_program, "WO"),
    (single_race_program, "WO"),
    (locked_counter_program, "WO"),
    (producer_consumer_program, "WO"),
    (iriw_program, "WO"),
    (lock_shadow_program, "WO"),
]


def _trace_for(program, model="WO", seed=0, propagation=None):
    result = run_program(
        program, make_model(model), seed=seed, propagation=propagation
    )
    return build_trace(result)


def _race_keys(races):
    return [(r.a, r.b, r.locations, r.is_data_race) for r in races]


def _partition_shape(report):
    return [
        (p.component_index, p.is_first, sorted(p.events))
        for p in report.analysis.partitions
    ]


# ----------------------------------------------------------------------
# the differential guarantees, over the workload corpus
# ----------------------------------------------------------------------

@pytest.mark.parametrize("build,model", CORPUS)
@pytest.mark.parametrize("seed", [0, 1, 7])
def test_shb_race_set_equals_baseline(build, model, seed):
    """SHB never loses a baseline race and never invents one: same
    races, same partitions, on every execution."""
    for propagation in (None, StubbornPropagation(), RandomPropagation(0.4)):
        trace = _trace_for(build(), model, seed, propagation)
        base = repro.detect(trace)
        shb = repro.detect(trace, detector="shb")
        assert isinstance(shb, SHBReport)
        assert _race_keys(shb.races) == _race_keys(base.races)
        assert _partition_shape(shb) == _partition_shape(base)


@pytest.mark.parametrize("build,model", CORPUS)
@pytest.mark.parametrize("seed", [0, 1, 7])
def test_wcp_race_set_contains_baseline(build, model, seed):
    """WCP's observed layer is bit-identical to the baseline; predicted
    races only ever add to it."""
    trace = _trace_for(build(), model, seed)
    base = repro.detect(trace)
    wcp = repro.detect(trace, detector="wcp")
    assert isinstance(wcp, WCPReport)
    assert _race_keys(wcp.observed_races) == _race_keys(base.races)
    assert set(_race_keys(base.races)) <= set(_race_keys(wcp.races))
    assert _partition_shape(wcp) == _partition_shape(base)
    predicted = {(r.a, r.b) for r in wcp.predicted_races}
    observed = {(r.a, r.b) for r in base.races}
    assert not predicted & observed


@pytest.mark.parametrize("build,model", CORPUS)
@pytest.mark.parametrize("seed", [0, 3])
def test_first_reported_race_agrees_with_baseline(build, model, seed):
    """Whatever extra guarantees the predictive backends add, the first
    race they put in front of the programmer is the baseline's."""
    trace = _trace_for(build(), model, seed)
    base = repro.detect(trace)
    if not base.reported_races:
        return
    first = base.reported_races[0]
    for detector in ("shb", "wcp"):
        report = repro.detect(trace, detector=detector)
        assert report.reported_races, detector
        got = report.reported_races[0]
        assert (got.a, got.b) == (first.a, first.b), detector


def test_shb_sound_races_are_certified_data_races():
    for seed in range(6):
        trace = _trace_for(racy_counter_program(3, 3), seed=seed)
        shb = repro.detect(trace, detector="shb")
        race_set = {(r.a, r.b) for r in shb.data_races}
        for race in shb.sound_races:
            assert race.is_data_race
            assert (race.a, race.b) in race_set
        # the per-race certificates never certify fewer real races
        # than the partition-level guarantee alone
        assert shb.certified_race_count >= len(shb.first_partitions)


def test_shb_certifies_strictly_more_on_racy_counter():
    """The acceptance bar at unit level: on a buggy workload SHB's
    per-race soundness certifies strictly more real races than the
    baseline's one-per-first-partition guarantee."""
    trace = _trace_for(racy_counter_program(3, 3), seed=3)
    base = repro.detect(trace)
    shb = repro.detect(trace, detector="shb")
    assert shb.certified_race_count > base.certified_race_count


def test_wcp_never_predicts_on_synchronized_corpus():
    """Correctly synchronized workloads whose critical sections really
    conflict must come out of WCP untouched: no dropped edges means no
    predictions means no false positives."""
    for build in (locked_counter_program, producer_consumer_program):
        for seed in range(4):
            trace = _trace_for(build(), seed=seed)
            base = repro.detect(trace)
            wcp = repro.detect(trace, detector="wcp")
            assert not wcp.predicted_races
            assert wcp.race_free == base.race_free


def test_wcp_predicts_the_lock_shadow_race():
    """The workload built for exactly this: read-only critical sections
    shadow an unguarded write-write race.  WCP must flag every seed;
    the baseline misses the seeds where the lucky section order hides
    it, and on those WCP's verdict comes from prediction alone."""
    predicted_only = 0
    for seed in range(40):
        trace = _trace_for(lock_shadow_program(), seed=seed)
        base = repro.detect(trace)
        wcp = repro.detect(trace, detector="wcp")
        assert not wcp.race_free, f"seed {seed}"
        if base.race_free:
            predicted_only += 1
            assert any(r.is_data_race for r in wcp.predicted_races)
            assert wcp.certified_race_count >= 1
    assert predicted_only > 0


def test_wcp_drops_only_nonconflicting_edges():
    """Every dropped so1 edge joins two critical sections with no data
    conflict (the relation object records exactly what it removed)."""
    trace = _trace_for(lock_shadow_program(), seed=0)
    wcp = WeakCausallyPrecedes(trace)
    assert wcp.dropped_so1_edges
    for rel_eid, acq_eid in wcp.dropped_so1_edges:
        assert not wcp._sections_conflict(rel_eid, acq_eid)


# ----------------------------------------------------------------------
# generated traces: the guarantees hold off the hand-built corpus too
# ----------------------------------------------------------------------

@given(trace=traces())
@settings(max_examples=60, deadline=None)
def test_shb_matches_baseline_on_generated_traces(trace):
    base = repro.detect(trace)
    shb = repro.detect(trace, detector="shb")
    assert _race_keys(shb.races) == _race_keys(base.races)
    race_set = {(r.a, r.b) for r in shb.data_races}
    assert all((r.a, r.b) in race_set for r in shb.sound_races)


@given(trace=traces())
@settings(max_examples=60, deadline=None)
def test_wcp_contains_baseline_on_generated_traces(trace):
    base = repro.detect(trace)
    wcp = repro.detect(trace, detector="wcp")
    assert _race_keys(wcp.observed_races) == _race_keys(base.races)
    assert set(_race_keys(base.races)) <= set(_race_keys(wcp.races))


# ----------------------------------------------------------------------
# degraded modes: no numpy, cyclic hb1
# ----------------------------------------------------------------------

def test_predictive_backends_survive_missing_numpy():
    """Without numpy the epoch fallback answers every ordering query;
    both backends must report the same races either way."""
    for build, model in ((lambda: racy_counter_program(3, 3), "WO"),
                         (lock_shadow_program, "WO")):
        trace = _trace_for(build(), model, seed=2)
        with_np = {
            d: _race_keys(repro.detect(trace, detector=d).races)
            for d in ("shb", "wcp")
        }
        with mock.patch.object(hb1_vc, "_np", None):
            for d in ("shb", "wcp"):
                report = repro.detect(trace, detector=d)
                assert _race_keys(report.races) == with_np[d]


def test_predictive_backends_survive_cyclic_hb1():
    """A cyclic hb1 (§3.1) sends the baseline to the closure backend;
    the predictive layers must ride along rather than crash — and SHB,
    whose soundness theorem needs a linearizable order, must certify
    nothing instead of certifying from a cycle."""
    trace = _cyclic_trace()
    with pytest.raises(CyclicHB1Error):
        VectorClockHB1(trace)
    base_races = find_races(trace, HappensBefore1(trace))
    shb = SHBDetector().analyze(trace)
    assert _race_keys(shb.races) == _race_keys(base_races)
    assert shb.sound_races == []
    wcp = WCPDetector().analyze(trace)
    assert set(_race_keys(base_races)) <= set(_race_keys(wcp.races))


# ----------------------------------------------------------------------
# the shared report protocol
# ----------------------------------------------------------------------

def _roundtrip(report):
    import json

    payload = json.loads(json.dumps(report.to_json()))
    return repro.report_from_json(payload)


def test_shb_report_roundtrip():
    trace = _trace_for(racy_counter_program(3, 3), seed=3)
    report = repro.detect(trace, detector="shb")
    assert report.sound_races  # exercise the interesting payload
    restored = _roundtrip(report)
    assert isinstance(restored, SHBReport)
    assert restored.to_json() == report.to_json()
    assert restored.certified_race_count == report.certified_race_count


def test_wcp_report_roundtrip():
    trace = _trace_for(lock_shadow_program(), seed=1)
    report = repro.detect(trace, detector="wcp")
    assert report.predicted_races  # exercise the interesting payload
    restored = _roundtrip(report)
    assert isinstance(restored, WCPReport)
    assert restored.to_json() == report.to_json()
    assert restored.certified_race_count == report.certified_race_count


@pytest.mark.parametrize("kind", [None, "garbage", "wcp-v9", 7])
def test_report_from_json_rejects_unknown_kinds(kind):
    """Satellite: dispatch on a missing/garbage/future kind is a
    ValueError naming the kind and listing every known one."""
    payload = {} if kind is None else {"kind": kind}
    with pytest.raises(ValueError) as err:
        repro.report_from_json(payload)
    message = str(err.value)
    assert repr(kind if kind is not None else None) in message
    for known in ("postmortem", "naive", "onthefly", "shb", "wcp"):
        assert known in message


def test_from_json_rejects_cross_kind_payloads():
    trace = _trace_for(racy_counter_program(2, 2), seed=0)
    shb_payload = repro.detect(trace, detector="shb").to_json()
    with pytest.raises(ValueError, match="expected a wcp report"):
        WCPReport.from_json(shb_payload)


# ----------------------------------------------------------------------
# satellite: the profile survives a raising detector
# ----------------------------------------------------------------------

class TestProfileOnError:
    def test_partial_profile_written_when_detector_raises(self, tmp_path):
        """detect(profile=<path>) used to lose the whole profile when
        the detector raised — exactly the run whose spans you need."""
        trace = _trace_for(racy_counter_program(2, 2), seed=0)
        path = tmp_path / "failing.jsonl"
        with pytest.raises(TypeError, match="ExecutionResult"):
            repro.detect(trace, detector="onthefly", profile=path)
        assert path.exists()
        assert obs.validate_profile(path) == []
        doc = obs.read_profile(path)
        assert doc["meta"]["detector"] == "onthefly"
        assert doc["meta"]["error"].startswith("TypeError")
        assert any(rec["path"] == "detect" for rec in doc["spans"])

    def test_no_error_meta_on_success(self, tmp_path):
        trace = _trace_for(racy_counter_program(2, 2), seed=0)
        path = tmp_path / "ok.jsonl"
        repro.detect(trace, detector="shb", profile=path)
        doc = obs.read_profile(path)
        assert "error" not in doc["meta"]
        assert any(
            rec["path"] == "detect/detect.shb" for rec in doc["spans"]
        )
