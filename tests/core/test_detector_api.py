"""The unified entry point ``repro.detect`` and the shared report
protocol (``to_json``/``from_json`` on every detector's report)."""

from __future__ import annotations

import json

import pytest

import repro
from repro import obs
from repro.analysis.naive import NaiveDetector, NaiveReport
from repro.core.detector import detect as old_detect
from repro.core.onthefly import OnTheFlyReport
from repro.core.onthefly_first import locate_first_races_on_the_fly
from repro.core.report import RaceReport
from repro.machine.models import make_model
from repro.machine.simulator import run_program
from repro.programs import racy_counter_program
from repro.trace.build import build_trace
from repro.trace.tracefile import write_trace


@pytest.fixture(scope="module")
def racy_result():
    return run_program(
        racy_counter_program(), make_model("WO"), seed=3
    )


@pytest.fixture(scope="module")
def racy_trace(racy_result):
    return build_trace(racy_result)


class TestDispatch:
    def test_execution_result_source(self, racy_result):
        report = repro.detect(racy_result)
        assert isinstance(report, RaceReport)
        assert not report.race_free

    def test_trace_source(self, racy_trace):
        report = repro.detect(racy_trace)
        assert isinstance(report, RaceReport)
        assert not report.race_free

    def test_path_sources(self, racy_trace, tmp_path):
        path = tmp_path / "racy.trace"
        write_trace(racy_trace, path)
        by_str = repro.detect(str(path))
        by_pathlike = repro.detect(path)
        assert len(by_str.data_races) == len(by_pathlike.data_races) \
            == len(repro.detect(racy_trace).data_races)

    def test_naive_detector(self, racy_trace):
        report = repro.detect(racy_trace, detector="naive")
        assert isinstance(report, NaiveReport)
        assert report.data_races

    def test_onthefly_detector(self, racy_result):
        report = repro.detect(racy_result, detector="onthefly")
        assert isinstance(report, OnTheFlyReport)
        assert report.races

    def test_onthefly_rejects_trace(self, racy_trace):
        with pytest.raises(TypeError, match="ExecutionResult"):
            repro.detect(racy_trace, detector="onthefly")

    def test_unknown_detector(self, racy_trace):
        with pytest.raises(ValueError, match="unknown detector"):
            repro.detect(racy_trace, detector="psychic")

    def test_unknown_source_type(self):
        with pytest.raises(TypeError, match="expected Trace"):
            repro.detect(42)

    def test_all_reports_share_the_protocol(self, racy_result):
        for detector in repro.DETECTOR_NAMES:
            report = repro.detect(racy_result, detector=detector)
            assert isinstance(report.format(), str)
            assert report.to_json()["kind"] == detector
            assert report.race_free is False


class TestDeprecatedPaths:
    def test_core_detector_detect_warns(self, racy_trace):
        with pytest.deprecated_call():
            report = old_detect(racy_trace)
        assert isinstance(report, RaceReport)

    def test_core_detector_detect_keeps_type_error(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                old_detect(42)

    def test_naive_analyze_execution_warns(self, racy_result):
        with pytest.deprecated_call():
            report = NaiveDetector().analyze_execution(racy_result)
        assert report.data_races

    def test_locate_first_races_on_the_fly_warns(self, racy_result):
        with pytest.deprecated_call():
            out = locate_first_races_on_the_fly(
                racy_result.operations, racy_result.processor_count
            )
        assert set(out) == {"first", "non_first"}


class TestReportRoundTrip:
    def _roundtrip(self, report):
        payload = json.loads(json.dumps(report.to_json()))
        return repro.report_from_json(payload)

    def test_postmortem_roundtrip(self, racy_result):
        report = repro.detect(racy_result)
        restored = self._roundtrip(report)
        assert isinstance(restored, RaceReport)
        assert restored.race_free == report.race_free
        assert [(r.a, r.b, r.locations) for r in restored.races] == \
            [(r.a, r.b, r.locations) for r in report.races]
        assert [p.is_first for p in restored.analysis.partitions] == \
            [p.is_first for p in report.analysis.partitions]
        assert restored.to_json() == report.to_json()

    def test_naive_roundtrip(self, racy_trace):
        report = repro.detect(racy_trace, detector="naive")
        restored = self._roundtrip(report)
        assert isinstance(restored, NaiveReport)
        assert restored.to_json() == report.to_json()

    def test_onthefly_roundtrip(self, racy_result):
        report = repro.detect(racy_result, detector="onthefly")
        restored = self._roundtrip(report)
        assert isinstance(restored, OnTheFlyReport)
        assert restored.to_json() == report.to_json()

    def test_from_json_rejects_wrong_kind(self, racy_trace):
        payload = repro.detect(racy_trace, detector="naive").to_json()
        with pytest.raises(ValueError, match="naive"):
            RaceReport.from_json(payload)
        payload["kind"] = "psychic"
        with pytest.raises(ValueError, match="unknown report kind"):
            repro.report_from_json(payload)


class TestProfileThreading:
    def test_profiler_records_pipeline_spans(self, racy_result):
        profiler = obs.Profiler()
        report = repro.detect(racy_result, profile=profiler)
        assert not report.race_free
        paths = {rec["path"] for rec in profiler.to_records()}
        assert "detect" in paths
        assert "detect/trace.build" in paths
        assert "detect/detect.postmortem/hb1.build" in paths
        assert "detect/detect.postmortem/races.find" in paths
        assert "detect/detect.postmortem/races.partition" in paths

    def test_profile_path_writes_jsonl(self, racy_result, tmp_path):
        path = tmp_path / "detect.jsonl"
        repro.detect(racy_result, detector="naive", profile=path)
        assert obs.validate_profile(path) == []
        doc = obs.read_profile(path)
        assert doc["meta"]["detector"] == "naive"
        assert any(
            rec["path"] == "detect/detect.naive" for rec in doc["spans"]
        )

    def test_profile_rejects_other_types(self, racy_trace):
        with pytest.raises(TypeError, match="profile"):
            repro.detect(racy_trace, profile=7)

    def test_disabled_by_default(self, racy_result):
        assert obs.active() is None
        repro.detect(racy_result)
        assert obs.active() is None
