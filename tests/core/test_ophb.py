"""Operation-level hb1 and race tests (ground-truth layer)."""

from repro.core.ophb import OpHappensBefore, build_op_augmented, find_op_races
from repro.machine.models import make_model
from repro.machine.program import ProgramBuilder
from repro.machine.scheduler import ScriptedScheduler
from repro.machine.simulator import Simulator, run_program
from repro.programs.figure1 import figure1a_program, figure1b_program


def _run(program, script=None, model="SC", seed=0):
    if script is None:
        return run_program(program, make_model(model), seed=seed)
    return Simulator(program, make_model(model),
                     scheduler=ScriptedScheduler(script), seed=seed).run()


def test_po_chain():
    b = ProgramBuilder()
    x = b.var("x")
    with b.thread() as t:
        t.write(x, 1)
        t.read(x)
        t.write(x, 2)
    result = _run(b.build())
    hb = OpHappensBefore(result.operations)
    seqs = [op.seq for op in result.operations]
    assert hb.ordered(seqs[0], seqs[2])
    assert not hb.ordered(seqs[2], seqs[0])


def test_so1_from_observed_release():
    result = _run(figure1b_program(), script=[0, 0, 0, 1, 1, 1, 1])
    hb = OpHappensBefore(result.operations)
    assert len(hb.so1_edges) == 1
    release_seq, acquire_seq = hb.so1_edges[0]
    assert hb.op(release_seq).is_release
    assert hb.op(acquire_seq).is_acquire
    # Data ops are transitively ordered across processors.
    writes = [op for op in result.operations if op.is_data and op.is_write]
    reads = [op for op in result.operations if op.is_data and op.is_read]
    for w in writes:
        for r in reads:
            if w.addr == r.addr:
                assert hb.ordered(w.seq, r.seq)


def test_figure1a_op_races():
    result = _run(figure1a_program())
    races = find_op_races(result.operations)
    data = [r for r in races if r.is_data_race]
    assert len(data) == 2  # <W(x),R(x)> and <W(y),R(y)>
    assert {r.addr for r in data} == {0, 1}


def test_figure1b_no_op_races():
    result = _run(figure1b_program(), script=[0, 0, 0, 1, 1, 1, 1])
    assert find_op_races(result.operations) == []


def test_sync_only_write_not_a_release_edge():
    b = ProgramBuilder()
    s = b.var("s")
    with b.thread() as t:
        t.test_and_set(s)
    with b.thread() as t:
        t.test_and_set(s)  # acquire reads P0's T&S write (value 1)
    result = _run(b.build(), script=[0, 1])
    hb = OpHappensBefore(result.operations)
    assert hb.so1_edges == []


def test_augmented_graph_race_edges_bidirectional():
    result = _run(figure1a_program())
    hb = OpHappensBefore(result.operations)
    races = find_op_races(result.operations, hb)
    gprime = build_op_augmented(hb, races)
    for race in races:
        assert gprime.has_edge(race.a, race.b)
        assert gprime.has_edge(race.b, race.a)
    # hb edges preserved
    for src, dst in hb.graph.edges():
        assert gprime.has_edge(src, dst)


def test_op_race_canonical_order():
    result = _run(figure1a_program())
    for race in find_op_races(result.operations):
        assert race.a < race.b


def test_sync_sync_op_race_not_data():
    b = ProgramBuilder()
    s = b.var("s")
    with b.thread() as t:
        t.unset(s)
    with b.thread() as t:
        t.unset(s)
    result = _run(b.build())
    races = find_op_races(result.operations)
    assert len(races) == 1
    assert not races[0].is_data_race
