"""Event-level race detection tests (Definition 2.4)."""

from repro.core.hb1 import HappensBefore1
from repro.core.races import data_races, find_races
from repro.machine.models import make_model
from repro.machine.program import ProgramBuilder
from repro.machine.scheduler import ScriptedScheduler
from repro.machine.simulator import Simulator, run_program
from repro.programs.figure1 import figure1a_program, figure1b_program
from repro.trace.build import build_trace


def _trace(program, script=None, model="SC", seed=0):
    if script is not None:
        result = Simulator(program, make_model(model),
                           scheduler=ScriptedScheduler(script), seed=seed).run()
    else:
        result = run_program(program, make_model(model), seed=seed)
    return build_trace(result)


def test_figure1a_has_one_event_race_on_both_locations():
    trace = _trace(figure1a_program())
    races = find_races(trace)
    assert len(races) == 1
    race = races[0]
    assert race.is_data_race
    assert set(race.locations) == {0, 1}  # x and y


def test_figure1b_race_free():
    trace = _trace(figure1b_program(), script=[0, 0, 0, 1, 1, 1, 1])
    assert find_races(trace) == []


def test_write_write_race():
    b = ProgramBuilder()
    x = b.var("x")
    with b.thread() as t:
        t.write(x, 1)
    with b.thread() as t:
        t.write(x, 2)
    races = find_races(_trace(b.build()))
    assert len(races) == 1


def test_read_read_no_race():
    b = ProgramBuilder()
    x = b.var("x", initial=5)
    with b.thread() as t:
        t.read(x)
    with b.thread() as t:
        t.read(x)
    assert find_races(_trace(b.build())) == []


def test_same_processor_never_races():
    b = ProgramBuilder()
    x = b.var("x")
    with b.thread() as t:
        t.write(x, 1)
        t.unset(b.var("s"))
        t.write(x, 2)
    assert find_races(_trace(b.build())) == []


def test_sync_sync_race_flagged_not_data():
    b = ProgramBuilder()
    s = b.var("s")
    with b.thread() as t:
        t.unset(s)
    with b.thread() as t:
        t.unset(s)
    races = find_races(_trace(b.build()))
    assert len(races) == 1
    assert not races[0].is_data_race
    assert data_races(races) == []


def test_sync_data_race_is_data_race():
    b = ProgramBuilder()
    s = b.var("s")
    with b.thread() as t:
        t.unset(s)          # sync write to s
    with b.thread() as t:
        t.read(s)           # data read of s
    races = find_races(_trace(b.build()))
    assert len(races) == 1
    assert races[0].is_data_race


def test_ordered_conflicts_not_races():
    b = ProgramBuilder()
    s = b.var("s", initial=1)
    x = b.var("x")
    with b.thread() as t:
        t.write(x, 1)
        t.unset(s)
    with b.thread() as t:
        t.lock(s)
        t.write(x, 2)
    trace = _trace(b.build(), script=[0, 0, 1, 1, 1])
    assert find_races(trace) == []


def test_races_canonically_ordered_and_sorted():
    trace = _trace(figure1a_program())
    races = find_races(trace)
    for race in races:
        assert race.a < race.b
    keys = [(race.a, race.b) for race in races]
    assert keys == sorted(keys)


def test_prebuilt_hb_accepted():
    trace = _trace(figure1a_program())
    hb = HappensBefore1(trace)
    assert find_races(trace, hb) == find_races(trace)


def test_describe_uses_symbols():
    trace = _trace(figure1a_program())
    race = find_races(trace)[0]
    text = race.describe(trace)
    assert "x" in text and "y" in text and "data race" in text


def test_three_way_races_counted_pairwise():
    b = ProgramBuilder()
    x = b.var("x")
    for _ in range(3):
        with b.thread() as t:
            t.write(x, 1)
    races = find_races(_trace(b.build()))
    assert len(races) == 3  # each unordered pair once
