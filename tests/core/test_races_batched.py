"""Differential tests: batched clock-matrix race sweep vs. closure.

`find_races` now dispatches on the ordering backend: a
`VectorClockHB1` with a clock matrix routes to the batched numpy sweep
(whole candidate-pair arrays tested at once), a closure-bearing backend
to the per-pair query path, and a matrix-less vector-clock backend to
the per-pair epoch test.  The acceptance bar for the optimization is
that all of them report *identical* races — same pairs, same conflict
locations, same data-race flags — on every acyclic trace, and that the
cyclic fallback still engages where vector clocks cannot go (§3.1).
"""

from unittest import mock

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import hb1_vc
from repro.core.detector import PostMortemDetector
from repro.core.hb1 import HappensBefore1
from repro.core.hb1_vc import CyclicHB1Error, VectorClockHB1
from repro.core.races import find_races
from repro.machine.models import make_model
from repro.machine.propagation import RandomPropagation, StubbornPropagation
from repro.machine.simulator import run_program
from repro.programs import (
    buggy_workqueue_program,
    figure1a_program,
    figure1b_program,
    figure2_weak_setup,
    racy_counter_program,
    single_race_program,
)
from repro.trace.build import build_trace

from tests.core.test_hb1_cycles import _cyclic_trace
from tests.properties.test_prop_traces import traces


def _trace_for(program, model="WO", seed=0, propagation=None):
    result = run_program(
        program, make_model(model), seed=seed, propagation=propagation
    )
    return build_trace(result)


def _assert_same_races(trace):
    hb = HappensBefore1(trace)
    closure_races = find_races(trace, hb)
    vc = VectorClockHB1(trace, base=hb)
    assert vc.clock_matrix is not None  # numpy is a declared dependency
    batched_races = find_races(trace, vc)
    assert batched_races == closure_races
    return closure_races


@pytest.mark.parametrize("build,model", [
    (lambda: racy_counter_program(3, 3), "WO"),
    (buggy_workqueue_program, "WO"),
    (figure1a_program, "SC"),
    (figure1b_program, "WO"),
    (single_race_program, "WO"),
])
@pytest.mark.parametrize("seed", [0, 1, 7])
def test_batched_sweep_matches_closure_on_executions(build, model, seed):
    for propagation in (None, StubbornPropagation(), RandomPropagation(0.4)):
        trace = _trace_for(build(), model, seed, propagation)
        _assert_same_races(trace)


def test_batched_sweep_finds_known_race():
    races = _assert_same_races(_trace_for(single_race_program()))
    assert any(r.is_data_race for r in races)


def test_batched_sweep_matches_closure_on_figure2():
    """The paper's Figure 2b reordering, reproduced deterministically."""
    result = figure2_weak_setup(make_model("WO")).run()
    races = _assert_same_races(build_trace(result))
    assert any(r.is_data_race for r in races)


@given(trace=traces())
@settings(max_examples=80, deadline=None)
def test_batched_sweep_matches_closure_on_generated_traces(trace):
    try:
        vc = VectorClockHB1(trace)
    except CyclicHB1Error:
        return  # cyclic hb1: the closure backend is the only one
    hb = HappensBefore1(trace)
    assert find_races(trace, vc) == find_races(trace, hb)


@given(trace=traces())
@settings(max_examples=60, deadline=None)
def test_epoch_fallback_matches_closure_without_numpy(trace):
    """With numpy unavailable the VC backend keeps dict clocks and the
    per-pair epoch sweep; results must not change."""
    with mock.patch.object(hb1_vc, "_np", None):
        try:
            vc = VectorClockHB1(trace)
        except CyclicHB1Error:
            return
        assert vc.clock_matrix is None
        races_epoch = find_races(trace, vc)
    hb = HappensBefore1(trace)
    assert races_epoch == find_races(trace, hb)


def test_detector_falls_back_to_closure_on_cyclic_trace():
    """The end-to-end pipeline survives a cyclic hb1 (hand-crafted
    weak-sync trace) by switching to the closure backend, and reports
    the same races the closure backend reports directly."""
    trace = _cyclic_trace()
    with pytest.raises(CyclicHB1Error):
        VectorClockHB1(trace)
    report = PostMortemDetector().analyze(trace)
    hb = HappensBefore1(trace)
    assert report.races == find_races(trace, hb)
    # the fallback eagerly built the closure (honest span attribution:
    # hb1.closure must not lazily fire inside races.find)
    assert report.hb._closure is not None


def test_detector_uses_vector_clocks_on_acyclic_traces():
    """On acyclic traces the pipeline never builds the closure: the
    batched sweep answers every ordering query from the clock matrix."""
    trace = _trace_for(racy_counter_program(2, 2))
    detector = PostMortemDetector()
    report = detector.analyze(trace)
    # the report's hb handle is the closure-capable relation (kept for
    # G'/partition work and to_dot), but analysis must not have forced
    # its closure
    assert report.hb._closure is None
    assert report.races == find_races(trace, HappensBefore1(trace))
