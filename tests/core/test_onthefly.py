"""On-the-fly detector tests (section 5 baseline)."""

import pytest

from repro.core.onthefly import OnTheFlyDetector, detect_on_the_fly
from repro.core.ophb import find_op_races
from repro.machine.models import make_model
from repro.machine.program import ProgramBuilder
from repro.machine.scheduler import ScriptedScheduler
from repro.machine.simulator import Simulator, run_program
from repro.programs.figure1 import figure1a_program, figure1b_program
from repro.programs.kernels import locked_counter_program, producer_consumer_program


def _run(program, script=None, model="SC", seed=0):
    if script is None:
        return run_program(program, make_model(model), seed=seed)
    return Simulator(program, make_model(model),
                     scheduler=ScriptedScheduler(script), seed=seed).run()


def test_detects_figure1a_races():
    result = _run(figure1a_program())
    races = detect_on_the_fly(result.operations, result.processor_count)
    assert {r.addr for r in races} == {0, 1}


def test_no_races_in_figure1b():
    result = _run(figure1b_program(), script=[0, 0, 0, 1, 1, 1, 1])
    assert detect_on_the_fly(result.operations, result.processor_count) == []


def test_no_races_in_locked_counter():
    for seed in range(5):
        result = _run(locked_counter_program(3, 3), seed=seed)
        races = detect_on_the_fly(result.operations, result.processor_count)
        assert races == [], f"seed {seed}"


def test_no_races_in_producer_consumer():
    result = _run(producer_consumer_program(5), seed=2)
    assert detect_on_the_fly(result.operations, result.processor_count) == []


def test_write_write_race_detected():
    b = ProgramBuilder()
    x = b.var("x")
    with b.thread() as t:
        t.write(x, 1)
    with b.thread() as t:
        t.write(x, 2)
    result = _run(b.build())
    races = detect_on_the_fly(result.operations, result.processor_count)
    assert len(races) == 1


def test_race_pairs_deduplicated():
    result = _run(figure1a_program())
    detector = OnTheFlyDetector(result.processor_count)
    detector.process_all(result.operations)
    keys = [r.key() for r in detector.races]
    assert len(keys) == len(set(keys))


def test_bounded_reader_history_misses_races():
    """With many concurrent readers of one location and a reader
    history of 1, the final conflicting write can only race with the
    last remembered reader — earlier reader races are lost (the
    accuracy loss of section 5)."""
    readers = 5
    b = ProgramBuilder()
    x = b.var("x")
    for _ in range(readers):
        with b.thread() as t:
            t.read(x)
    with b.thread() as t:
        t.write(x, 1)
    # all readers first, then the writer
    script = list(range(readers)) + [readers]
    result = _run(b.build(), script=script)

    full = detect_on_the_fly(result.operations, result.processor_count,
                             reader_history=readers)
    bounded = detect_on_the_fly(result.operations, result.processor_count,
                                reader_history=1)
    assert len(full) == readers
    assert len(bounded) < len(full)


def test_eviction_counter():
    b = ProgramBuilder()
    x = b.var("x")
    for _ in range(4):
        with b.thread() as t:
            t.read(x)
    result = _run(b.build(), script=[0, 1, 2, 3])
    detector = OnTheFlyDetector(result.processor_count, reader_history=2)
    detector.process_all(result.operations)
    assert detector.evicted_accesses > 0


def test_memory_footprint_bounded():
    result = _run(locked_counter_program(3, 5), seed=1)
    detector = OnTheFlyDetector(result.processor_count,
                                reader_history=2, writer_history=1)
    detector.process_all(result.operations)
    locations = len({op.addr for op in result.operations if op.is_data})
    assert detector.memory_footprint <= locations * 3


def test_agrees_with_postmortem_on_unbounded_history():
    """With effectively unbounded history the on-the-fly race set equals
    the op-level data races of the post-mortem ground truth."""
    for seed in range(6):
        result = _run(figure1a_program(), seed=seed)
        otf = detect_on_the_fly(result.operations, result.processor_count,
                                reader_history=64, writer_history=64)
        ground = [r for r in find_op_races(result.operations) if r.is_data_race]
        assert {(r.a, r.b) for r in otf} == {(r.a, r.b) for r in ground}


def test_constructor_validation():
    with pytest.raises(ValueError):
        OnTheFlyDetector(0)
    with pytest.raises(ValueError):
        OnTheFlyDetector(2, reader_history=0)
