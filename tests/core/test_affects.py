"""Tests for the affects relation (Definition 3.3) on G'."""

import pytest

from repro.core.affects import (
    AffectsIndex,
    affected_events,
    race_affects_event,
    race_affects_race,
)
from repro.core.augmented import build_augmented_graph
from repro.core.hb1 import HappensBefore1
from repro.core.races import find_races
from repro.machine.models import make_model
from repro.machine.program import ProgramBuilder
from repro.machine.simulator import run_program
from repro.programs.workqueue import run_figure2
from repro.trace.build import build_trace


@pytest.fixture(scope="module")
def figure2_parts():
    result = run_figure2(make_model("WO"))
    trace = build_trace(result)
    hb = HappensBefore1(trace)
    races = find_races(trace, hb)
    gprime = build_augmented_graph(hb, races)
    return trace, hb, races, gprime


def test_race_affects_its_own_events(figure2_parts):
    _, _, races, gprime = figure2_parts
    race = races[0]
    assert race_affects_event(gprime, race, race.a)
    assert race_affects_event(gprime, race, race.b)


def test_race_affects_po_successors(figure2_parts):
    trace, _, races, gprime = figure2_parts
    data = [r for r in races if r.is_data_race]
    queue_race = min(data, key=lambda r: (r.a, r.b))
    # Everything later in either processor's program order is affected.
    later = trace.events[queue_race.b.proc][queue_race.b.pos + 1].eid
    assert race_affects_event(gprime, queue_race, later)


def test_first_race_affects_region_race_not_vice_versa(figure2_parts):
    trace, _, races, gprime = figure2_parts
    data = sorted((r for r in races if r.is_data_race), key=lambda r: (r.a, r.b))
    queue_race, region_race = data[0], data[-1]
    assert queue_race != region_race
    assert race_affects_race(gprime, queue_race, region_race)
    assert not race_affects_race(gprime, region_race, queue_race)


def test_affected_events_includes_endpoints(figure2_parts):
    _, _, races, gprime = figure2_parts
    race = races[0]
    out = affected_events(gprime, race)
    assert race.a in out and race.b in out


def test_affects_index_matches_pointwise(figure2_parts):
    _, _, races, gprime = figure2_parts
    index = AffectsIndex(gprime, races)
    for r1 in races:
        for r2 in races:
            if r1 is r2:
                continue
            assert index.affects(r1, r2) == race_affects_race(gprime, r1, r2)


def test_unaffected_races_are_the_firsts(figure2_parts):
    _, _, races, gprime = figure2_parts
    index = AffectsIndex(gprime, races)
    unaffected = index.unaffected_races()
    assert unaffected  # the queue race exists and nothing precedes it
    for race in unaffected:
        assert not any(
            other is not race and index.affects(other, race) for other in races
        )


def test_independent_races_do_not_affect_each_other():
    b = ProgramBuilder()
    x = b.var("x")
    y = b.var("y")
    with b.thread() as t:
        t.write(x, 1)
    with b.thread() as t:
        t.read(x)
    with b.thread() as t:
        t.write(y, 1)
    with b.thread() as t:
        t.read(y)
    result = run_program(b.build(), make_model("SC"), seed=0)
    trace = build_trace(result)
    hb = HappensBefore1(trace)
    races = find_races(trace, hb)
    assert len(races) == 2
    gprime = build_augmented_graph(hb, races)
    r1, r2 = races
    assert not race_affects_race(gprime, r1, r2)
    assert not race_affects_race(gprime, r2, r1)
    index = AffectsIndex(gprime, races)
    assert len(index.unaffected_races()) == 2
