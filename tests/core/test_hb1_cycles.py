"""Cyclic hb1 tolerance (section 3.1).

"Since in general, the synchronization operations of a weak system are
not constrained to be executed in a sequentially consistent manner, the
so1 relation and hence the hb1 relation may contain cycles and hence
not be partial orders.  Nevertheless, the current dynamic techniques
... can still be applied."

Our simulator keeps sync operations SC, so it can never produce such a
trace; these tests hand-craft one (two release/acquire pairs whose
pairings point in opposite directions across the processors) and check
that every pipeline stage survives and still produces a sane report.
"""

from repro.core.detector import PostMortemDetector
from repro.core.hb1 import HappensBefore1
from repro.core.partitions import partition_races
from repro.core.races import find_races
from repro.graph import find_cycle
from repro.machine.operations import OperationKind, SyncRole
from repro.trace.bitvector import BitVector
from repro.trace.build import Trace
from repro.trace.events import ComputationEvent, EventId, SyncEvent


def _cyclic_trace() -> Trace:
    """P0: acq(f2)=1 ; comp{W x} ; rel(f1)=1
       P1: acq(f1)=1 ; comp{R x} ; rel(f2)=1
    with per-location sync orders that pair each release to the *other*
    processor's earlier acquire — impossible under SC sync, cyclic hb1.
    """
    f1, f2, x = 0, 1, 2

    p0_acq = SyncEvent(EventId(0, 0), addr=f2, op_kind=OperationKind.READ,
                       role=SyncRole.ACQUIRE, value=1, order_pos=1)
    p0_comp = ComputationEvent(EventId(0, 1), writes=BitVector([x]))
    p0_rel = SyncEvent(EventId(0, 2), addr=f1, op_kind=OperationKind.WRITE,
                       role=SyncRole.RELEASE, value=1, order_pos=0)

    p1_acq = SyncEvent(EventId(1, 0), addr=f1, op_kind=OperationKind.READ,
                       role=SyncRole.ACQUIRE, value=1, order_pos=1)
    p1_comp = ComputationEvent(EventId(1, 1), reads=BitVector([x]))
    p1_rel = SyncEvent(EventId(1, 2), addr=f2, op_kind=OperationKind.WRITE,
                       role=SyncRole.RELEASE, value=1, order_pos=0)

    return Trace(
        processor_count=2,
        memory_size=3,
        events=[[p0_acq, p0_comp, p0_rel], [p1_acq, p1_comp, p1_rel]],
        sync_order={
            f1: [p0_rel.eid, p1_acq.eid],
            f2: [p1_rel.eid, p0_acq.eid],
        },
        model_name="hand-crafted-weak",
    )


def test_hb1_is_cyclic():
    hb = HappensBefore1(_cyclic_trace())
    assert not hb.is_partial_order()
    assert find_cycle(hb.graph) is not None
    assert len(hb.so1_edges) == 2


def test_cycle_members_mutually_ordered():
    hb = HappensBefore1(_cyclic_trace())
    a = EventId(0, 1)
    b = EventId(1, 1)
    # Both directions hold through the cycle — so the pair is NOT a
    # race despite being conflicting: hb1 "orders" them both ways.
    assert hb.ordered(a, b)
    assert hb.ordered(b, a)
    assert not hb.unordered(a, b)


def test_race_detection_survives_cycle():
    trace = _cyclic_trace()
    races = find_races(trace)
    # The x accesses are hb1-comparable (via the cycle), so no race is
    # reported between them; the two release/acquire pairs conflict on
    # the flags but are ordered too.
    assert races == []


def test_partitioning_survives_cycle():
    trace = _cyclic_trace()
    hb = HappensBefore1(trace)
    races = find_races(trace, hb)
    analysis = partition_races(trace, hb, races)
    assert analysis.partitions == []
    # The whole 6-event cycle condenses to few components.
    assert len(analysis.cond.components) < 6


def test_full_detector_on_cyclic_trace():
    report = PostMortemDetector().analyze(_cyclic_trace())
    assert report.race_free
    text = report.format()
    assert "No data races" in text


def test_cyclic_trace_with_extra_race():
    """Add a third processor racing on x: the race must still surface
    even with the cycle present elsewhere in G'."""
    trace = _cyclic_trace()
    p2_comp = ComputationEvent(EventId(2, 0), writes=BitVector([2]))
    trace.events.append([p2_comp])
    trace.processor_count = 3
    report = PostMortemDetector().analyze(trace)
    assert not report.race_free
    # P2's write races with both cycle members (each pair reported).
    assert len(report.data_races) == 2
    assert len(report.first_partitions) == 1
