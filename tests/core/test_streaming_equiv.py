"""Differential guarantees for the online streaming detector.

Streaming's whole claim is exactness: the race set it reports with
O(P·V) state and no materialized trace must be *byte-identical* to the
post-mortem hb1 sweep on the same execution — across the workload
corpus, propagation policies, seeds, hypothesis-generated traces, all
three source kinds (operation stream, object trace, columnar mmap),
cyclic sync chains (fallback), and a missing numpy.
"""

import json
from unittest import mock

import pytest
from hypothesis import given, settings

import repro
from repro.core import hb1_vc
from repro.core.hb1 import HappensBefore1
from repro.core.races import find_races
from repro.core.streaming import StreamingDetector, StreamingReport
from repro.machine.models import make_model
from repro.machine.propagation import RandomPropagation, StubbornPropagation
from repro.machine.simulator import run_program
from repro.programs import (
    buggy_workqueue_program,
    figure1a_program,
    figure1b_program,
    iriw_program,
    lock_shadow_program,
    locked_counter_program,
    producer_consumer_program,
    racy_counter_program,
    single_race_program,
)
from repro.trace.build import build_trace
from repro.trace.columnar import open_columnar, to_columnar

from tests.core.test_hb1_cycles import _cyclic_trace
from tests.properties.test_prop_traces import traces

CORPUS = [
    (lambda: racy_counter_program(3, 3), "WO"),
    (buggy_workqueue_program, "WO"),
    (figure1a_program, "SC"),
    (figure1b_program, "WO"),
    (single_race_program, "WO"),
    (locked_counter_program, "WO"),
    (producer_consumer_program, "WO"),
    (iriw_program, "WO"),
    (lock_shadow_program, "WO"),
]


def _execute(program, model="WO", seed=0, propagation=None):
    return run_program(
        program, make_model(model), seed=seed, propagation=propagation
    )


def _race_keys(races):
    return [(r.a, r.b, r.locations, r.is_data_race) for r in races]


# ----------------------------------------------------------------------
# exactness across the corpus, all source kinds
# ----------------------------------------------------------------------

@pytest.mark.parametrize("build,model", CORPUS)
@pytest.mark.parametrize("seed", [0, 1, 7])
def test_streaming_equals_postmortem_race_set(build, model, seed):
    """Operation-stream and trace-merge streaming both report exactly
    the post-mortem race set, on every corpus execution."""
    for propagation in (None, StubbornPropagation(), RandomPropagation(0.4)):
        result = _execute(build(), model, seed, propagation)
        trace = build_trace(result)
        base = repro.detect(trace)
        online = repro.detect(result, detector="streaming")
        merged = repro.detect(trace, detector="streaming")
        assert isinstance(online, StreamingReport)
        assert _race_keys(online.races) == _race_keys(base.races)
        assert _race_keys(merged.races) == _race_keys(base.races)
        assert not online.used_fallback
        assert not merged.used_fallback


@pytest.mark.parametrize("build,model", CORPUS)
@pytest.mark.parametrize("seed", [0, 7])
def test_streaming_columnar_mmap_equals_object_path(build, model, seed, tmp_path):
    """The columnar mmap path produces a byte-identical report JSON to
    the in-memory object path — races, counts, everything."""
    trace = build_trace(_execute(build(), model, seed))
    path = tmp_path / "t.wrct"
    to_columnar(trace, path)
    with open_columnar(path) as lazy:
        col_report = repro.detect(lazy, detector="streaming")
    obj_report = repro.detect(trace, detector="streaming")
    assert json.dumps(col_report.to_json(), sort_keys=True) == \
        json.dumps(obj_report.to_json(), sort_keys=True)


@pytest.mark.parametrize("build,model", CORPUS[:4])
def test_postmortem_columnar_mmap_equals_object_path(build, model, tmp_path):
    """Same byte-identity for the post-mortem pipeline itself: the
    columnar fast path changes nothing but the memory profile."""
    trace = build_trace(_execute(build(), model, seed=7))
    path = tmp_path / "t.wrct"
    to_columnar(trace, path)
    obj_json = repro.detect(trace).to_json()
    with open_columnar(path) as lazy:
        col_json = repro.detect(lazy).to_json()
    # the object trace knows ground-truth op seqs, the file does not —
    # everything the detector computed must still match exactly
    for payload in (obj_json, col_json):
        payload.pop("trace")
    assert json.dumps(col_json, sort_keys=True) == \
        json.dumps(obj_json, sort_keys=True)


@given(trace=traces())
@settings(max_examples=60, deadline=None)
def test_streaming_equals_postmortem_on_generated_traces(trace):
    base = find_races(trace, HappensBefore1(trace))
    report = StreamingDetector().analyze(trace)
    assert _race_keys(report.races) == _race_keys(base)


def test_streaming_without_numpy(tmp_path):
    """The engine itself is pure Python; the fallback postmortem sweep
    and the columnar read path must both survive a missing numpy."""
    from repro.trace import columnar

    trace = build_trace(_execute(racy_counter_program(3, 3), seed=5))
    path = tmp_path / "t.wrct"
    to_columnar(trace, path)
    base = _race_keys(repro.detect(trace).races)
    with mock.patch.object(hb1_vc, "_np", None), \
            mock.patch.object(columnar, "_np", None):
        with open_columnar(path) as lazy:
            assert _race_keys(
                repro.detect(lazy, detector="streaming").races
            ) == base
        assert _race_keys(
            repro.detect(trace, detector="streaming").races
        ) == base


# ----------------------------------------------------------------------
# cyclic chains: the fallback keeps the guarantee
# ----------------------------------------------------------------------

def test_streaming_cyclic_trace_falls_back_exactly():
    trace = _cyclic_trace()
    base = find_races(trace, HappensBefore1(trace))
    report = StreamingDetector().analyze(trace)
    assert report.used_fallback
    assert _race_keys(report.races) == _race_keys(base)


# ----------------------------------------------------------------------
# bounded state: the pruning actually prunes
# ----------------------------------------------------------------------

def test_streaming_state_is_bounded_on_synchronized_workload():
    """On a fully synchronized workload the remembered-access set must
    not track trace length: pruning reclaims accesses as soon as every
    other processor has seen them, so the peak grows only with the
    scheduler-skew window (events not yet globally seen), not with the
    number of events."""
    stats = {}
    for increments in (4, 64):
        result = _execute(locked_counter_program(3, increments))
        report = repro.detect(result, detector="streaming")
        assert report.race_free
        assert report.pruned_entries > 0
        stats[increments] = (report.retained_peak, report.event_count)
    peak_growth = stats[64][0] / stats[4][0]
    event_growth = stats[64][1] / stats[4][1]
    assert event_growth > 10
    assert peak_growth < event_growth / 4, stats


def test_streaming_report_protocol_round_trip():
    result = _execute(racy_counter_program(3, 3), seed=2)
    report = repro.detect(result, detector="streaming")
    assert not report.race_free
    assert report.certified_race_count == 1
    payload = json.loads(json.dumps(report.to_json()))
    back = repro.report_from_json(payload)
    assert isinstance(back, StreamingReport)
    assert back.to_json() == report.to_json()
    with pytest.raises(ValueError, match="streaming"):
        StreamingReport.from_json({"kind": "postmortem"})


def test_streaming_format_mentions_online_state():
    result = _execute(racy_counter_program(3, 3), seed=2)
    text = repro.detect(result, detector="streaming").format()
    assert "Streaming" in text
    assert "retained peak" in text
