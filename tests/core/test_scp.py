"""SCP extraction and Condition 3.4 checking tests (section 3.2)."""

from repro.core.ophb import OpHappensBefore, find_op_races
from repro.core.scp import check_condition_34, extract_scp
from repro.machine.models import make_model
from repro.machine.program import ProgramBuilder
from repro.machine.propagation import StubbornPropagation
from repro.machine.scheduler import ScriptedScheduler
from repro.machine.simulator import Simulator, run_program
from repro.programs.figure1 import figure1a_program, figure1b_program
from repro.programs.workqueue import run_figure2


def test_race_free_execution_scp_is_whole(fig1b_wo_result):
    scp = extract_scp(fig1b_wo_result)
    assert scp.is_whole_execution
    assert scp.size == len(fig1b_wo_result.operations)


def test_racy_but_benign_execution_scp_whole(fig1a_sc_result):
    # SC execution with races: everything is still in an SCP.
    scp = extract_scp(fig1a_sc_result)
    assert scp.is_whole_execution


def test_figure2_scp_cut_matches_taint(figure2_result):
    scp = extract_scp(figure2_result)
    # P1 (pid 1) is cut at its first region-work operation (local index
    # 3: after read QEmpty, read Q, Unset).
    assert scp.cuts[1] == 3
    assert scp.cuts[0] is None
    assert scp.cuts[2] is None


def test_figure2_stale_read_is_inside_scp(figure2_result):
    """The stale read(Q,37) is an operation of some SC execution (the
    value differs there, but operation identity ignores values)."""
    scp = extract_scp(figure2_result)
    stale = figure2_result.stale_reads
    assert len(stale) == 1
    assert scp.contains(stale[0])


def test_scp_is_po_prefix(figure2_result):
    scp = extract_scp(figure2_result)
    for ops in figure2_result.per_proc:
        in_flags = [scp.contains(op) for op in ops]
        # Once False, never True again (per-processor prefix).
        if False in in_flags:
            first_false = in_flags.index(False)
            assert not any(in_flags[first_false:])


def test_scp_is_hb1_closed(figure2_result):
    hb = OpHappensBefore(figure2_result.operations)
    scp = extract_scp(figure2_result, hb)
    for src, dst in hb.graph.edges():
        if dst in scp.included:
            assert src in scp.included


def test_hb1_closure_propagates_cuts():
    """If a processor's acquire pairs with a release that is outside the
    SCP, the closure must push the acquire out too."""
    b = ProgramBuilder()
    x = b.var("x")
    arr = b.array("arr", 8)
    f = b.var("f")
    done = b.var("done")
    with b.thread() as t:  # P0: races
        t.write(x, 3)
    with b.thread() as t:  # P1: stale read -> tainted address -> cut,
        v = t.read(x)      # then releases f *after* the cut
        t.write(b.at(arr, v), 1)
        t.release_write(f, 1)
    with b.thread() as t:  # P2: acquires f, pairing with a post-cut release
        t.spin_until_eq(f, 1)
        t.write(done, 1)
    sim = Simulator(
        b.build(), make_model("WO"),
        scheduler=ScriptedScheduler([0, 1, 1, 1, 2, 2, 2, 2]),
        propagation=StubbornPropagation(), seed=0,
    )
    result = sim.run()
    assert result.completed
    scp = extract_scp(result)
    # P1 cut at the tainted-address write (local index 1).
    assert scp.cuts[1] == 1
    # P2's acquire read observed P1's post-cut release: closure must cut
    # P2 no later than that acquire (local index 0).
    assert scp.cuts[2] == 0


class TestCondition34:
    def test_clause1_race_free(self, fig1b_wo_result):
        report = check_condition_34(fig1b_wo_result)
        assert report.data_race_free
        assert report.no_stale_reads
        assert report.clause1_ok
        assert report.ok

    def test_clause1_vacuous_when_racy(self, figure2_result):
        report = check_condition_34(figure2_result)
        assert not report.data_race_free
        assert report.clause1_ok  # vacuously

    def test_clause2_figure2(self, figure2_result):
        report = check_condition_34(figure2_result)
        assert report.clause2_ok
        assert report.unaccounted_races == []
        assert report.data_races_in_scp  # the queue races are in the SCP

    def test_summary_text(self, figure2_result):
        text = check_condition_34(figure2_result).summary()
        assert "clause1=ok" in text
        assert "clause2=ok" in text

    def test_sc_model_always_ok(self):
        for seed in range(5):
            result = run_program(figure1a_program(), make_model("SC"), seed=seed)
            assert check_condition_34(result).ok

    def test_all_weak_models_figure1a_stubborn(self):
        for model in ("WO", "RCsc", "DRF0", "DRF1"):
            result = run_program(
                figure1a_program(), make_model(model), seed=0,
                propagation=StubbornPropagation(),
            )
            assert check_condition_34(result).ok, model


def test_contains_accepts_ops_and_seqs(figure2_result):
    scp = extract_scp(figure2_result)
    op = figure2_result.operations[0]
    assert scp.contains(op) == scp.contains(op.seq)


# ----------------------------------------------------------------------
# degenerate inputs: zero and single-operation executions
# ----------------------------------------------------------------------

class TestDegenerateInputs:
    def _single_op_result(self, model="WO"):
        b = ProgramBuilder()
        x = b.var("x")
        with b.thread() as t:
            t.write(x, 1)
        return run_program(b.build(), make_model(model), seed=0)

    def test_close_scp_empty_operations(self):
        from repro.core.scp import close_scp
        scp = close_scp([], [])
        assert scp.size == 0
        assert scp.is_whole_execution
        assert scp.cuts == []

    def test_close_scp_pads_short_cut_list(self):
        result = run_figure2(make_model("WO"))
        from repro.core.scp import close_scp
        padded = close_scp(result.operations, [])
        assert len(padded.cuts) == result.processor_count
        assert padded.is_whole_execution

    def test_close_scp_empty_cuts_equals_no_cuts(self):
        result = run_figure2(make_model("WO"))
        from repro.core.scp import close_scp
        nones = close_scp(result.operations,
                          [None] * result.processor_count)
        empty = close_scp(result.operations, [])
        assert nones.cuts == empty.cuts
        assert nones.included == empty.included

    def test_zero_op_execution_condition_34(self):
        b = ProgramBuilder()
        b.var("x")
        with b.thread():
            pass  # a thread with no instructions
        result = run_program(b.build(), make_model("WO"), seed=0)
        assert len(result.operations) == 0
        report = check_condition_34(result)
        assert report.ok
        scp = extract_scp(result)
        assert scp.size == 0
        assert scp.is_whole_execution
        from repro.core.robustness import check_robustness
        assert check_robustness(result).robust

    def test_single_op_execution_condition_34(self):
        result = self._single_op_result()
        report = check_condition_34(result)
        assert report.ok
        scp = extract_scp(result)
        assert scp.is_whole_execution
        assert scp.size == 1

    def test_single_op_execution_robust(self):
        from repro.core.robustness import check_robustness
        result = self._single_op_result()
        report = check_robustness(result)
        assert report.robust
        assert report.witness == [result.operations[0].seq]
