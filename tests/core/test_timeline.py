"""Timeline renderer tests."""

from repro.core.timeline import render_timeline
from repro.machine.models import make_model
from repro.machine.scheduler import ScriptedScheduler
from repro.machine.simulator import Simulator, run_program
from repro.programs.figure1 import figure1a_program, figure1b_program


def test_figure2_timeline_matches_paper_layout(figure2_result):
    text = render_timeline(figure2_result, max_rows=14)
    lines = text.splitlines()
    assert lines[0].split() == ["P0", "P1", "P2"]
    assert "read(Q,37) *stale*" in text
    assert "=== end of SCP ===" in text
    # the SCP marker is in P1's column, right after its release
    scp_line = next(l for l in lines if "end of SCP" in l)
    release_line = lines[lines.index(scp_line) - 1]
    assert "rel-write(S,0)" in release_line
    assert "more operations" in lines[-1]


def test_one_operation_per_row(figure2_result):
    text = render_timeline(figure2_result, max_rows=10)
    for line in text.splitlines()[2:-1]:
        if "end of SCP" in line or not line.strip():
            continue
        cells = [c for c in line.split(".") if c.strip()]
        assert len(cells) == 1, line


def test_pair_annotations():
    result = Simulator(
        figure1b_program(), make_model("WO"),
        scheduler=ScriptedScheduler([0, 0, 0, 1, 1, 1, 1]), seed=0,
    ).run()
    text = render_timeline(result, mark_pairs=True)
    assert "<-rel@" in text  # the Test&Set acquire shows its release


def test_no_markers_when_disabled(figure2_result):
    text = render_timeline(figure2_result, mark_scp=False, mark_pairs=False,
                           max_rows=None)
    assert "end of SCP" not in text
    assert "<-rel@" not in text
    assert "more operations" not in text


def test_row_count_honoured():
    result = run_program(figure1a_program(), make_model("SC"), seed=0)
    text = render_timeline(result, max_rows=2)
    body = [l for l in text.splitlines()[2:] if "more operations" not in l]
    assert len(body) == 2


def test_column_width():
    result = run_program(figure1a_program(), make_model("SC"), seed=0)
    text = render_timeline(result, width=16)
    header = text.splitlines()[0]
    assert header.index("P1") == 16
