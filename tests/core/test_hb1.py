"""happens-before-1 construction tests (Definitions 2.1-2.3)."""

from repro.machine.models import make_model
from repro.machine.program import ProgramBuilder
from repro.machine.scheduler import ScriptedScheduler
from repro.machine.simulator import Simulator, run_program
from repro.core.hb1 import HappensBefore1
from repro.trace.build import build_trace
from repro.trace.events import SyncEvent


def _trace(builder_fn, script=None, model="SC", seed=0):
    b = ProgramBuilder()
    builder_fn(b)
    program = b.build()
    if script is not None:
        sim = Simulator(program, make_model(model),
                        scheduler=ScriptedScheduler(script), seed=seed)
        result = sim.run()
    else:
        result = run_program(program, make_model(model), seed=seed)
    return build_trace(result)


def test_po_edges_chain_each_processor():
    def build(b):
        x = b.var("x")
        s = b.var("s")
        with b.thread() as t:
            t.write(x, 1)
            t.unset(s)
            t.write(x, 2)
    trace = _trace(build)
    hb = HappensBefore1(trace)
    events = trace.events[0]
    assert len(hb.po_edges) == 2
    assert hb.ordered(events[0].eid, events[2].eid)  # transitive po
    assert not hb.ordered(events[2].eid, events[0].eid)


def test_unset_pairs_with_test_and_set():
    def build(b):
        s = b.var("s", initial=1)
        x = b.var("x")
        with b.thread() as t:   # P0 releases
            t.write(x, 1)
            t.unset(s)
        with b.thread() as t:   # P1 acquires (single successful T&S)
            t.lock(s)
            t.read(x)
    # Script: P0 write, P0 unset, P1 T&S (success), P1 branch, P1 read.
    trace = _trace(build, script=[0, 0, 1, 1, 1])
    hb = HappensBefore1(trace)
    assert len(hb.so1_edges) == 1
    release, acquire = hb.so1_edges[0]
    assert release.proc == 0
    assert acquire.proc == 1
    # cross-processor ordering established for the data accesses
    comp0 = trace.events[0][0].eid
    comp1 = trace.events[1][-1].eid
    assert hb.ordered(comp0, comp1)


def test_failed_test_and_set_does_not_pair():
    """A T&S that reads the *T&S write* of another processor observes a
    SYNC_ONLY write, not a release, so no so1 edge arises."""
    def build(b):
        s = b.var("s")
        with b.thread() as t:
            t.test_and_set(s)   # succeeds, writes 1
        with b.thread() as t:
            t.test_and_set(s)   # fails: reads the 1 of P0's T&S write
    trace = _trace(build, script=[0, 1])
    hb = HappensBefore1(trace)
    assert hb.so1_edges == []


def test_acquire_of_unreleased_initial_value_does_not_pair():
    def build(b):
        s = b.var("s")
        with b.thread() as t:
            t.acquire_read(s)  # reads initial 0; no release ever wrote it
    trace = _trace(build)
    hb = HappensBefore1(trace)
    assert hb.so1_edges == []


def test_value_mismatch_does_not_pair():
    def build(b):
        f = b.var("f")
        with b.thread() as t:
            t.release_write(f, 5)
            t.release_write(f, 6)
        with b.thread() as t:
            t.acquire_read(f)
    # P1 reads after both releases: value 6 pairs with the second
    # release only.
    trace = _trace(build, script=[0, 0, 1])
    hb = HappensBefore1(trace)
    assert len(hb.so1_edges) == 1
    release_eid = hb.so1_edges[0][0]
    release = trace.event(release_eid)
    assert isinstance(release, SyncEvent)
    assert release.value == 6


def test_same_processor_release_acquire_not_so1():
    def build(b):
        f = b.var("f")
        with b.thread() as t:
            t.release_write(f, 1)
            t.acquire_read(f)
    trace = _trace(build)
    hb = HappensBefore1(trace)
    assert hb.so1_edges == []  # po already orders them


def test_sc_execution_hb1_is_partial_order():
    def build(b):
        s = b.var("s", initial=1)
        x = b.var("x")
        with b.thread() as t:
            t.write(x, 1)
            t.unset(s)
        with b.thread() as t:
            t.lock(s)
            t.read(x)
    trace = _trace(build, script=[0, 0, 1, 1, 1])
    hb = HappensBefore1(trace)
    assert hb.is_partial_order()


def test_unordered_is_symmetric_and_irreflexive_for_distinct():
    def build(b):
        x = b.var("x")
        with b.thread() as t:
            t.write(x, 1)
        with b.thread() as t:
            t.read(x)
    trace = _trace(build)
    hb = HappensBefore1(trace)
    a = trace.events[0][0].eid
    b_ = trace.events[1][0].eid
    assert hb.unordered(a, b_)
    assert hb.unordered(b_, a)


def test_transitive_chain_through_two_locks():
    def build(b):
        s1 = b.var("s1", initial=1)
        s2 = b.var("s2", initial=1)
        x = b.var("x")
        with b.thread() as t:  # P0
            t.write(x, 1)
            t.unset(s1)
        with b.thread() as t:  # P1: relay
            t.lock(s1)
            t.unset(s2)
        with b.thread() as t:  # P2
            t.lock(s2)
            t.read(x)
    trace = _trace(build, script=[0, 0, 1, 1, 1, 2, 2, 2])
    hb = HappensBefore1(trace)
    first = trace.events[0][0].eid   # P0's computation (write x)
    last = trace.events[2][-1].eid   # P2's computation (read x)
    assert hb.ordered(first, last)
