"""Race-provenance tests (§4.1–4.2 evidence): the non-ordering
witness, its double-check against the closure backend, partition and
Definition 4.1 ordering evidence, and the report/DOT views.

The acceptance workload is workqueue-buggy under WO: every
first-partition race must come back with a verified witness."""

import pytest

import repro
from repro import detect, explain, make_model, run_program
from repro.core.provenance import (
    NonOrderingWitness,
    ProvenanceError,
    RaceProvenance,
    explain_races,
)
from repro.programs.workqueue import buggy_workqueue_program, run_figure2
from repro.trace.events import EventId


@pytest.fixture(scope="module")
def workqueue_report():
    result = run_program(
        buggy_workqueue_program(), make_model("WO"), seed=0
    )
    return detect(result)


@pytest.fixture(scope="module")
def figure2_report():
    return detect(run_figure2(make_model("WO")))


# ----------------------------------------------------------------------
# acceptance: witness-checked provenance on workqueue-buggy/WO
# ----------------------------------------------------------------------

def test_every_first_partition_race_is_witness_checked(workqueue_report):
    report = workqueue_report
    assert not report.race_free  # the workload is racy at seed 0
    prov = explain_races(report)
    assert prov.all_verified
    by_signature = {p.signature: p for p in prov.provenances}
    for race in report.reported_races:
        entry = by_signature[race.signature]
        assert entry.reported
        assert entry.is_first
        assert entry.witness.verified
        assert entry.witness.holds
        assert not entry.witness.a_reaches_b
        assert not entry.witness.b_reaches_a
        assert entry.preceding == []  # first ⇔ unpreceded (Def 4.1)


@pytest.mark.parametrize("seed", range(4))
def test_witnesses_verify_across_seeds(seed):
    result = run_program(
        buggy_workqueue_program(), make_model("WO"), seed=seed
    )
    prov = explain_races(detect(result))
    assert prov.all_verified
    assert all(p.witness.holds for p in prov.provenances)


def test_provenance_covers_every_data_race(workqueue_report):
    prov = explain_races(workqueue_report)
    assert len(prov.provenances) == len(workqueue_report.data_races)
    assert len(prov.reported) == len(workqueue_report.reported_races)
    assert len(prov.suppressed) == len(
        workqueue_report.suppressed_races
    )


# ----------------------------------------------------------------------
# suppressed races: the Definition 4.1 ordering evidence
# ----------------------------------------------------------------------

def test_suppressed_race_names_preceding_partitions(figure2_report):
    prov = explain_races(figure2_report)
    assert prov.suppressed, "figure 2 must suppress artifact races"
    first_indices = {
        p.component_index for p in figure2_report.analysis.partitions
        if p.is_first
    }
    for entry in prov.suppressed:
        assert not entry.is_first
        assert entry.preceding, "suppressed ⇒ preceded (Def 4.1)"
        assert entry.component_index not in entry.preceding
    for entry in prov.reported:
        # a first partition reaches the suppressed ones, never the
        # other way round
        assert entry.preceding == []
        assert entry.component_index in first_indices


def test_describe_explains_both_directions(figure2_report):
    prov = explain_races(figure2_report)
    reported_text = prov.reported[0].describe(figure2_report.trace)
    assert "FIRST partition" in reported_text
    assert "Theorem 4.2" in reported_text
    assert "verified against closure" in reported_text
    suppressed_text = prov.suppressed[0].describe(figure2_report.trace)
    assert "suppressed" in suppressed_text
    assert "artifact" in suppressed_text


# ----------------------------------------------------------------------
# report views
# ----------------------------------------------------------------------

def test_format_groups_reported_and_suppressed(figure2_report):
    text = explain_races(figure2_report).format()
    assert "Race provenance" in text
    assert "[REPORTED]" in text
    assert "[SUPPRESSED]" in text
    assert "witness:" in text


def test_format_race_free_execution():
    result = run_program(
        repro.locked_counter_program(2, 2), make_model("WO"), seed=0
    )
    report = detect(result)
    assert report.race_free
    prov = explain_races(report)
    assert prov.provenances == []
    assert prov.all_verified  # vacuously
    assert "nothing to explain" in prov.format()
    assert "sequentially" in prov.format()


def test_to_json_shape(workqueue_report):
    import json

    doc = explain_races(workqueue_report).to_json()
    assert doc["kind"] == "provenance"
    assert doc["model"] == "WO"
    assert doc["all_verified"] is True
    assert doc["race_free"] is False
    for entry in doc["races"]:
        assert entry["witness"]["holds"] is True
        assert entry["witness"]["verified"] is True
        assert entry["reported"] == entry["partition"]["is_first"]
        assert "~" in entry["race"]["signature"]
    json.dumps(doc)  # serializable as-is


def test_to_dot_highlights_first_partition_events(workqueue_report):
    prov = explain_races(workqueue_report)
    dot = prov.to_dot()
    assert dot.startswith("digraph")
    assert "lightgoldenrod1" in dot  # highlighted first-partition nodes
    # without a highlight set the rendering is untouched
    assert "lightgoldenrod1" not in workqueue_report.to_dot()


def test_find_by_signature(workqueue_report):
    prov = explain_races(workqueue_report)
    first = prov.provenances[0]
    assert prov.find(first.signature) is first
    assert prov.find("P9.E9~P9.E8") is None


def test_include_sync_extends_coverage(figure2_report):
    base = explain_races(figure2_report)
    full = explain_races(figure2_report, include_sync=True)
    assert len(full.provenances) == len(figure2_report.races)
    assert len(full.provenances) >= len(base.provenances)
    sync = [p for p in full.provenances
            if not p.race.is_data_race]
    assert all(not p.reported for p in sync)  # sync races never reported


# ----------------------------------------------------------------------
# failure modes
# ----------------------------------------------------------------------

def test_ordered_pair_raises_provenance_error(workqueue_report):
    """A 'race' whose endpoints hb1-ordered must be rejected, not
    explained — that would mean the detector contradicted itself."""
    report = workqueue_report
    race = report.data_races[0]
    # forge a race between two po-ordered events of one processor
    forged = type(race)(
        a=EventId(0, 0), b=EventId(0, 1),
        locations=race.locations, is_data_race=True,
    )
    broken = type(report)(
        trace=report.trace, hb=report.hb,
        races=[forged], analysis=report.analysis,
    )
    with pytest.raises(ProvenanceError, match="hb1-ordered"):
        explain_races(broken)


def test_witness_describe_flags_disagreement():
    witness = NonOrderingWitness(
        a=EventId(0, 0), b=EventId(1, 0),
        a_reaches_b=False, b_reaches_a=False, verified=False,
    )
    assert "CLOSURE DISAGREES" in witness.describe()
    assert witness.holds


# ----------------------------------------------------------------------
# the repro.explain() API wrapper
# ----------------------------------------------------------------------

def test_api_explain_accepts_report_and_source(workqueue_report):
    from_report = explain(workqueue_report)
    result = run_program(
        buggy_workqueue_program(), make_model("WO"), seed=0
    )
    from_source = explain(result)
    assert {p.signature for p in from_report.provenances} == \
        {p.signature for p in from_source.provenances}
    assert from_report.all_verified and from_source.all_verified
