"""On-the-fly first-race location tests (section 5 future work)."""

from repro.core.onthefly_first import (
    FirstRaceOnTheFlyDetector,
    locate_first_races_on_the_fly,
)
from repro.machine.models import make_model
from repro.machine.program import ProgramBuilder
from repro.machine.scheduler import ScriptedScheduler
from repro.machine.simulator import Simulator, run_program
from repro.programs.figure1 import figure1a_program
from repro.programs.workqueue import run_figure2


def test_clean_program_reports_nothing():
    from repro.programs.kernels import locked_counter_program
    result = run_program(locked_counter_program(2, 2), make_model("WO"), seed=1)
    out = locate_first_races_on_the_fly(
        result.operations, result.processor_count
    )
    assert out["first"] == []
    assert out["non_first"] == []


def test_independent_races_all_first():
    b = ProgramBuilder()
    x, y = b.var("x"), b.var("y")
    with b.thread() as t:
        t.write(x, 1)
    with b.thread() as t:
        t.read(x)
    with b.thread() as t:
        t.write(y, 1)
    with b.thread() as t:
        t.read(y)
    result = run_program(b.build(), make_model("SC"), seed=0)
    out = locate_first_races_on_the_fly(
        result.operations, result.processor_count, reader_history=8
    )
    assert len(out["first"]) == 2
    assert out["non_first"] == []


def test_figure2_first_is_a_queue_race():
    result = run_figure2(make_model("WO"))
    out = locate_first_races_on_the_fly(
        result.operations, result.processor_count,
        reader_history=8, writer_history=4,
    )
    assert len(out["first"]) >= 1
    name = result.addr_name
    first_addrs = {name(r.addr) for r in out["first"]}
    assert first_addrs <= {"Q", "QEmpty"}
    # every region race is classified as affected (non-first)
    region_races = [
        r for r in out["non_first"] if name(r.addr).startswith("region[")
    ]
    assert region_races
    assert not any(name(r.addr).startswith("region[") for r in out["first"])


def test_downstream_race_marked_non_first():
    """A race whose endpoint po-follows an earlier race endpoint is
    affected (Definition 3.3 clause 2) and must not be first."""
    b = ProgramBuilder()
    x, y = b.var("x"), b.var("y")
    with b.thread() as t:  # P0
        t.write(x, 1)
        t.write(y, 1)      # po-after the x race endpoint
    with b.thread() as t:  # P1
        t.read(x)
    with b.thread() as t:  # P2
        t.read(y)
    # Schedule: x race completes first, then the y ops.
    result = Simulator(
        b.build(), make_model("SC"),
        scheduler=ScriptedScheduler([0, 1, 0, 2]), seed=0,
    ).run()
    out = locate_first_races_on_the_fly(
        result.operations, result.processor_count, reader_history=8
    )
    name = result.addr_name
    assert {name(r.addr) for r in out["first"]} == {"x"}
    assert {name(r.addr) for r in out["non_first"]} == {"y"}


def test_contamination_propagates_through_sync():
    """Affection crosses processors via release/acquire pairing: a race
    downstream of a paired acquire whose release is contaminated is
    non-first."""
    b = ProgramBuilder()
    x, y, f = b.var("x"), b.var("y"), b.var("f")
    with b.thread() as t:  # P0: races on x, then releases f
        t.write(x, 1)
        t.release_write(f, 1)
    with b.thread() as t:  # P1: the x race
        t.read(x)
    with b.thread() as t:  # P2: acquires f (after P0's race), writes y
        t.spin_until_eq(f, 1)
        t.write(y, 1)
    with b.thread() as t:  # P3: reads y -> the y race is affected
        t.read(y)
    result = Simulator(
        b.build(), make_model("SC"),
        scheduler=ScriptedScheduler([0, 1, 0, 2, 2, 2, 2, 3]), seed=0,
    ).run()
    out = locate_first_races_on_the_fly(
        result.operations, result.processor_count, reader_history=8
    )
    name = result.addr_name
    assert {name(r.addr) for r in out["first"]} == {"x"}
    assert {name(r.addr) for r in out["non_first"]} == {"y"}


def test_counts_partition_the_race_set():
    result = run_figure2(make_model("WO"))
    detector = FirstRaceOnTheFlyDetector(
        result.processor_count, reader_history=8, writer_history=4
    )
    detector.process_all(result.operations)
    assert len(detector.first_races) + len(detector.non_first_races) == \
           len(detector.races)


def test_figure1a_races_first():
    result = run_program(figure1a_program(), make_model("SC"), seed=0)
    out = locate_first_races_on_the_fly(
        result.operations, result.processor_count
    )
    # Depending on schedule, the second race may be po-downstream of
    # the first's endpoint and thus correctly non-first; but at least
    # one race is always first.
    assert len(out["first"]) >= 1
