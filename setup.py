"""Setup shim for environments without the `wheel` package, where
PEP 660 editable installs (`pip install -e .`) cannot build.  Metadata
lives in pyproject.toml; use `python setup.py develop` offline."""

from setuptools import setup

setup()
